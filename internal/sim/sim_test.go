package sim

import (
	"fmt"
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
)

// testMsg is a payload with an explicit bit size.
type testMsg struct {
	v    int
	bits int
}

func (m testMsg) Bits() int { return m.bits }

// recorder logs everything it receives and sends a fixed payload per round
// on every port until stopRound.
type recorder struct {
	stopRound int
	sendBits  int
	received  [][3]int // (round, port, value)
	rounds    int
	initDeg   int
}

func (m *recorder) Init(ctx *Context) {
	m.initDeg = ctx.Degree()
	ctx.Broadcast(testMsg{v: -1, bits: m.sendBits})
}

func (m *recorder) Step(ctx *Context, inbox []Packet) {
	m.rounds++
	for _, pkt := range inbox {
		m.received = append(m.received, [3]int{ctx.Round(), pkt.Port, pkt.Payload.(testMsg).v})
	}
	if ctx.Round() >= m.stopRound {
		ctx.Halt()
		return
	}
	ctx.Broadcast(testMsg{v: ctx.Round(), bits: m.sendBits})
}

func newRecorderNet(g *graph.Graph, stopRound, bits int, parallel bool) *Network {
	return New(Config{Graph: g, Seed: 1, Parallel: parallel}, func(node, degree int, r *rng.RNG) Machine {
		return &recorder{stopRound: stopRound, sendBits: bits}
	})
}

func TestInitSendsArriveAtRoundZero(t *testing.T) {
	g := graph.Path(2)
	nw := newRecorderNet(g, 3, 4, false)
	nw.Run(1)
	m := nw.Machine(0).(*recorder)
	if len(m.received) != 1 || m.received[0] != [3]int{0, 0, -1} {
		t.Fatalf("round-0 inbox: %v", m.received)
	}
}

func TestSynchronousDelivery(t *testing.T) {
	g := graph.Path(2)
	nw := newRecorderNet(g, 5, 4, false)
	nw.Run(10)
	m := nw.Machine(1).(*recorder)
	// Node 1 receives: Init payload at round 0, then round r-1's payload
	// at round r.
	want := [][3]int{{0, 0, -1}, {1, 0, 0}, {2, 0, 1}, {3, 0, 2}, {4, 0, 3}, {5, 0, 4}}
	if len(m.received) != len(want) {
		t.Fatalf("received %v want %v", m.received, want)
	}
	for i := range want {
		if m.received[i] != want[i] {
			t.Fatalf("delivery %d: %v want %v", i, m.received[i], want[i])
		}
	}
}

func TestHaltStopsNetwork(t *testing.T) {
	g := graph.Cycle(5)
	nw := newRecorderNet(g, 3, 4, false)
	ran := nw.Run(100)
	if !nw.AllHalted() {
		t.Fatal("network not halted")
	}
	// Halt at round 3 plus one drain round for in-flight packets.
	if ran > 6 {
		t.Fatalf("ran %d rounds, expected <= 6", ran)
	}
	for v := 0; v < g.N(); v++ {
		if !nw.Halted(v) {
			t.Fatalf("node %d not halted", v)
		}
	}
}

func TestPacketsToHaltedNodesDropped(t *testing.T) {
	g := graph.Path(2)
	// Node 0 halts immediately; node 1 keeps sending.
	nw := New(Config{Graph: g, Seed: 1}, func(node, degree int, r *rng.RNG) Machine {
		stop := 4
		if node == 0 {
			stop = 0
		}
		return &recorder{stopRound: stop, sendBits: 4}
	})
	nw.Run(10)
	m0 := nw.Machine(0).(*recorder)
	// Node 0 saw only the Init payload (round 0) plus nothing after its
	// halt in round 0.
	for _, rec := range m0.received {
		if rec[0] > 0 {
			t.Fatalf("halted node received post-halt packet: %v", rec)
		}
	}
}

func TestInboxSortedByPort(t *testing.T) {
	g := graph.Star(6) // hub has 5 ports
	nw := newRecorderNet(g, 2, 4, false)
	nw.Run(4)
	hub := nw.Machine(0).(*recorder)
	lastRound, lastPort := -1, -1
	for _, rec := range hub.received {
		if rec[0] != lastRound {
			lastRound, lastPort = rec[0], -1
		}
		if rec[1] < lastPort {
			t.Fatalf("inbox not port-sorted: %v", hub.received)
		}
		lastPort = rec[1]
	}
	if len(hub.received) == 0 {
		t.Fatal("hub received nothing")
	}
}

func TestMessageAndBitAccounting(t *testing.T) {
	g := graph.Path(2)
	nw := newRecorderNet(g, 2, 10, false)
	nw.Run(5)
	m := nw.Metrics()
	// Sends: Init (2 nodes × 1 port) + rounds 0 and 1 (2 each); the halt
	// round 2 sends nothing. 6 messages of 10 bits.
	if m.Messages != 6 {
		t.Fatalf("messages %d want 6", m.Messages)
	}
	if m.Bits != 60 {
		t.Fatalf("bits %d want 60", m.Bits)
	}
}

func TestCongestChargingSmallPayloads(t *testing.T) {
	g := graph.Path(2)
	nw := newRecorderNet(g, 2, 4, false) // well under budget
	nw.Run(5)
	m := nw.Metrics()
	if m.MaxLinkSlots != 1 {
		t.Fatalf("maxLinkSlots %d want 1", m.MaxLinkSlots)
	}
	// Every executed round charges one slot; the Init transmission batch
	// charges one more.
	if m.ChargedRounds != int64(m.Rounds)+1 {
		t.Fatalf("charged %d want %d", m.ChargedRounds, m.Rounds+1)
	}
}

func TestCongestChargingOversizedPayload(t *testing.T) {
	g := graph.Path(2)
	budget := 8
	nw := New(Config{Graph: g, Seed: 1, CongestBits: budget},
		func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: 1, sendBits: 20} // 20 bits -> 3 slots
		})
	nw.Run(4)
	m := nw.Metrics()
	if m.MaxLinkSlots != 3 {
		t.Fatalf("maxLinkSlots %d want 3", m.MaxLinkSlots)
	}
	if m.ChargedRounds <= int64(m.Rounds) {
		t.Fatalf("charged %d should exceed rounds %d", m.ChargedRounds, m.Rounds)
	}
}

// channelSender sends on two channels over the same link each round.
type channelSender struct{}

func (m *channelSender) Init(ctx *Context) {}
func (m *channelSender) Step(ctx *Context, inbox []Packet) {
	if ctx.Round() >= 2 {
		ctx.Halt()
		return
	}
	for p := 0; p < ctx.Degree(); p++ {
		ctx.Send(p, 1, testMsg{v: 1, bits: 2})
		ctx.Send(p, 2, testMsg{v: 2, bits: 2})
	}
}

func TestChannelsNeverShareSlots(t *testing.T) {
	g := graph.Path(2)
	nw := New(Config{Graph: g, Seed: 1, CongestBits: 64},
		func(node, degree int, r *rng.RNG) Machine { return &channelSender{} })
	nw.Run(5)
	m := nw.Metrics()
	// Two tiny payloads would fit one slot, but distinct channels must
	// occupy distinct slots.
	if m.MaxLinkSlots != 2 {
		t.Fatalf("maxLinkSlots %d want 2", m.MaxLinkSlots)
	}
	if m.MaxChannels != 2 {
		t.Fatalf("maxChannels %d want 2", m.MaxChannels)
	}
}

// gossiper exercises randomness: forwards the max value seen, initialized
// from the node RNG.
type gossiper struct {
	val    uint64
	rounds int
}

func (m *gossiper) Init(ctx *Context) {
	m.val = ctx.RNG().Uint64() >> 32
	ctx.Broadcast(testMsg{v: int(m.val), bits: 32})
}

func (m *gossiper) Step(ctx *Context, inbox []Packet) {
	m.rounds++
	changed := false
	for _, pkt := range inbox {
		if v := uint64(pkt.Payload.(testMsg).v); v > m.val {
			m.val = v
			changed = true
		}
	}
	if ctx.Round() >= 30 {
		ctx.Halt()
		return
	}
	if changed || ctx.Round() == 0 {
		ctx.Broadcast(testMsg{v: int(m.val), bits: 32})
	}
}

func runGossip(parallel bool, workers int) ([]uint64, Metrics) {
	g := graph.Torus(4, 5)
	nw := New(Config{Graph: g, Seed: 7, Parallel: parallel, Workers: workers},
		func(node, degree int, r *rng.RNG) Machine { return &gossiper{} })
	nw.Run(50)
	vals := make([]uint64, g.N())
	for v := 0; v < g.N(); v++ {
		vals[v] = nw.Machine(v).(*gossiper).val
	}
	return vals, nw.Metrics()
}

func TestSchedulerDeterminism(t *testing.T) {
	seqVals, seqMet := runGossip(false, 0)
	for _, workers := range []int{2, 4, 8} {
		parVals, parMet := runGossip(true, workers)
		for i := range seqVals {
			if seqVals[i] != parVals[i] {
				t.Fatalf("workers=%d: node %d state differs: %d vs %d", workers, i, seqVals[i], parVals[i])
			}
		}
		if seqMet != parMet {
			t.Fatalf("workers=%d: metrics differ:\nseq %+v\npar %+v", workers, seqMet, parMet)
		}
	}
}

func TestGossipConverges(t *testing.T) {
	vals, _ := runGossip(false, 0)
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[0] {
			t.Fatalf("gossip did not converge: node %d has %d, node 0 has %d", i, vals[i], vals[0])
		}
	}
}

func TestRunUntilPredicate(t *testing.T) {
	g := graph.Cycle(4)
	nw := newRecorderNet(g, 100, 4, false)
	ran := nw.RunUntil(50, func(completed int) bool { return completed >= 7 })
	if ran != 7 {
		t.Fatalf("ran %d want 7", ran)
	}
}

func TestSendValidation(t *testing.T) {
	g := graph.Path(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid port")
		}
	}()
	New(Config{Graph: g, Seed: 1}, func(node, degree int, r *rng.RNG) Machine {
		return &badSender{}
	})
}

type badSender struct{}

func (m *badSender) Init(ctx *Context) { ctx.Send(5, 0, testMsg{bits: 1}) }
func (m *badSender) Step(ctx *Context, inbox []Packet) {
}

func TestNilPayloadPanics(t *testing.T) {
	g := graph.Path(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil payload")
		}
	}()
	New(Config{Graph: g, Seed: 1}, func(node, degree int, r *rng.RNG) Machine {
		return &nilSender{}
	})
}

type nilSender struct{}

func (m *nilSender) Init(ctx *Context) { ctx.Send(0, 0, nil) }
func (m *nilSender) Step(ctx *Context, inbox []Packet) {
}

func TestDefaultCongestBits(t *testing.T) {
	cases := map[int]int{2: 8, 3: 16, 4: 16, 5: 24, 256: 64, 257: 72, 1024: 80}
	for n, want := range cases {
		if got := defaultCongestBits(n); got != want {
			t.Fatalf("defaultCongestBits(%d) = %d want %d", n, got, want)
		}
	}
}

func TestAnonymityOfContext(t *testing.T) {
	// The context exposes exactly degree, round, rng, and send/halt —
	// compile-time check that no node-identity accessor exists is implicit
	// in the API; here we verify degree is the node's true degree.
	g := graph.Star(5)
	nw := newRecorderNet(g, 1, 4, false)
	nw.Run(3)
	if d := nw.Machine(0).(*recorder).initDeg; d != 4 {
		t.Fatalf("hub degree %d want 4", d)
	}
	if d := nw.Machine(1).(*recorder).initDeg; d != 1 {
		t.Fatalf("leaf degree %d want 1", d)
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Rounds: 3, ChargedRounds: 5, Messages: 7, Bits: 90, CongestBits: 16, MaxLinkSlots: 2}
	if s := m.String(); s == "" {
		t.Fatal("empty metrics string")
	} else {
		_ = fmt.Sprintf("%s", s)
	}
}

func BenchmarkRoundOverheadCycle1024(b *testing.B) {
	g := graph.Cycle(1024)
	nw := New(Config{Graph: g, Seed: 1}, func(node, degree int, r *rng.RNG) Machine {
		return &gossiper{}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !nw.Step() {
			b.StopTimer()
			return
		}
	}
}
