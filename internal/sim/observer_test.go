package sim

import (
	"context"
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
)

// TestObserverStreamsRounds: the observer fires once per executed round,
// in order, with cumulative metrics matching the final accounting, and is
// identical across schedulers.
func TestObserverStreamsRounds(t *testing.T) {
	type obs struct {
		rounds []int
		halted []int
		last   Metrics
	}
	run := func(s Scheduler) (*Network, *obs) {
		o := &obs{}
		g := graph.Cycle(8)
		nw := New(Config{Graph: g, Seed: 1, Scheduler: s, Observer: func(ri RoundInfo) {
			o.rounds = append(o.rounds, ri.Round)
			o.halted = append(o.halted, ri.Halted)
			o.last = ri.Metrics
		}}, func(node, degree int, r *rng.RNG) Machine {
			return &recorder{stopRound: 5, sendBits: 4}
		})
		nw.Run(100)
		return nw, o
	}

	ref, seq := run(Sequential)
	if len(seq.rounds) != ref.Metrics().Rounds {
		t.Fatalf("observed %d rounds, executed %d", len(seq.rounds), ref.Metrics().Rounds)
	}
	for i, r := range seq.rounds {
		if r != i {
			t.Fatalf("round order broken: %v", seq.rounds)
		}
	}
	if seq.last != ref.Metrics() {
		t.Fatalf("final observation %+v != metrics %+v", seq.last, ref.Metrics())
	}
	if seq.halted[len(seq.halted)-1] != 8 {
		t.Fatalf("final halted count %d, want 8", seq.halted[len(seq.halted)-1])
	}
	for _, s := range []Scheduler{WorkerPool, Actors} {
		nw, got := run(s)
		nw.Close()
		if len(got.rounds) != len(seq.rounds) || got.last != seq.last {
			t.Fatalf("scheduler %v observer diverged", s)
		}
	}
}

// TestRunContextCancelled: cancellation between rounds stops the loop and
// reports the context error, leaving metrics consistent.
func TestRunContextCancelled(t *testing.T) {
	g := graph.Cycle(8)
	ctx, cancel := context.WithCancel(context.Background())
	var nw *Network
	nw = New(Config{Graph: g, Seed: 1, Observer: func(ri RoundInfo) {
		if ri.Round == 2 {
			cancel()
		}
	}}, func(node, degree int, r *rng.RNG) Machine {
		return &recorder{stopRound: 50, sendBits: 4}
	})
	executed, err := nw.RunContext(ctx, 100)
	if err != context.Canceled {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if executed != 3 {
		t.Fatalf("executed %d rounds, want 3 (cancel observed after round 2)", executed)
	}
	if nw.Metrics().Rounds != executed {
		t.Fatalf("metrics rounds %d != executed %d", nw.Metrics().Rounds, executed)
	}

	// An uncancelled context behaves exactly like Run.
	nw2 := New(Config{Graph: g, Seed: 1}, func(node, degree int, r *rng.RNG) Machine {
		return &recorder{stopRound: 5, sendBits: 4}
	})
	executed2, err := nw2.RunContext(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	nw3 := New(Config{Graph: g, Seed: 1}, func(node, degree int, r *rng.RNG) Machine {
		return &recorder{stopRound: 5, sendBits: 4}
	})
	if plain := nw3.Run(100); plain != executed2 {
		t.Fatalf("RunContext executed %d, Run executed %d", executed2, plain)
	}
}

// TestRunUntilContextCancelled mirrors the open-ended loop.
func TestRunUntilContextCancelled(t *testing.T) {
	g := graph.Cycle(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	nw := New(Config{Graph: g, Seed: 1}, func(node, degree int, r *rng.RNG) Machine {
		return &recorder{stopRound: 50, sendBits: 4}
	})
	executed, err := nw.RunUntilContext(ctx, 100, func(int) bool { return false })
	if err != context.Canceled || executed != 0 {
		t.Fatalf("pre-cancelled RunUntilContext: executed=%d err=%v", executed, err)
	}
}
