package sim

// arenaChunk is the number of machines per arena slab. Chunking keeps
// pointers stable (slabs are never reallocated) without requiring the
// caller to know the node count up front — the harness's presumed n can
// differ from the true network size, so factories cannot size one slab.
const arenaChunk = 1024

// Arena is a chunked slab allocator for per-node machine state. Protocol
// factories allocate one machine per node; doing that with individual
// `new` calls costs n heap objects per trial. An Arena hands out pointers
// into 1024-element slabs instead, so a million-node build does ~1000
// allocations rather than a million, while every returned pointer stays
// valid for the arena's lifetime.
//
// The zero value is ready to use. Arenas are single-goroutine (the
// simulator constructs machines sequentially); create one arena per
// factory, never share one across concurrently-built networks. Elements
// are zero-initialized and never recycled.
type Arena[T any] struct {
	chunks [][]T
	used   int
}

// New returns a pointer to a fresh zero-valued T with a stable address.
func (a *Arena[T]) New() *T {
	if len(a.chunks) == 0 || a.used == arenaChunk {
		a.chunks = append(a.chunks, make([]T, arenaChunk))
		a.used = 0
	}
	p := &a.chunks[len(a.chunks)-1][a.used]
	a.used++
	return p
}
