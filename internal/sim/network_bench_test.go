package sim

import (
	"fmt"
	"testing"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
)

// chatter broadcasts one fixed payload per round on `channels` logical
// channels and never halts: the routing + link-accounting hot path with no
// protocol logic. The payload is preallocated and shared (payloads are
// immutable by contract), so the machine itself allocates nothing per
// round and the benchmark isolates the Network's own cost.
type chatter struct {
	channels uint32
	msg      *testMsg
}

func (m *chatter) Init(ctx *Context) {}

func (m *chatter) Step(ctx *Context, inbox []Packet) {
	for c := uint32(0); c < m.channels; c++ {
		ctx.BroadcastChannel(c, m.msg)
	}
}

func chatterFactory(channels uint32) Factory {
	msg := &testMsg{v: 7, bits: 16}
	return func(node, degree int, r *rng.RNG) Machine {
		return &chatter{channels: channels, msg: msg}
	}
}

// BenchmarkNetworkRound measures one synchronous round of all-node
// broadcast traffic — the simulator's hot path. allocs/op is the headline:
// the flat per-edge link accounting keeps steady-state rounds
// allocation-free, where the old map-keyed accounting allocated a fresh
// aggregation map every round.
func BenchmarkNetworkRound(b *testing.B) {
	tops := []struct {
		name string
		g    *graph.Graph
	}{
		{"torus/n=256", graph.Torus(16, 16)},
		{"complete/n=64", graph.Complete(64)},
		{"cycle/n=1024", graph.Cycle(1024)},
	}
	for _, tp := range tops {
		for _, channels := range []uint32{1, 3} {
			b.Run(fmt.Sprintf("%s/channels=%d", tp.name, channels), func(b *testing.B) {
				nw := New(Config{Graph: tp.g, Seed: 1}, chatterFactory(channels))
				// Warm the reusable buffers so the measurement reflects
				// steady state.
				nw.Run(4)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					nw.Step()
				}
			})
		}
	}
}

// BenchmarkNetworkRoundParallel measures the same hot path under the
// WorkerPool scheduler (goroutine fan-out dominates allocs here; routing
// stays single-threaded and allocation-free).
func BenchmarkNetworkRoundParallel(b *testing.B) {
	g := graph.Torus(16, 16)
	nw := New(Config{Graph: g, Seed: 1, Scheduler: WorkerPool}, chatterFactory(1))
	nw.Run(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Step()
	}
}

// TestStepAllocationFree pins the hot-path property the flattening PR
// bought: once buffers are warm, a steady-state broadcast round allocates
// nothing — no map for link accounting, no sort scratch, no mailbox growth.
func TestStepAllocationFree(t *testing.T) {
	nw := New(Config{Graph: graph.Torus(8, 8)}, chatterFactory(2))
	nw.Run(8) // warm mailboxes, send buffers, and accounting chains
	avg := testing.AllocsPerRun(50, func() {
		nw.Step()
	})
	if avg > 0.5 {
		t.Fatalf("steady-state Step allocates %.1f objects/round, want 0", avg)
	}
}

// TestMultiChannelAccountingFlat checks the flattened link accounting
// reproduces the CONGEST slot semantics: two channels on one link in one
// round never share a slot, and repeated sends on the same (link, channel)
// coalesce into that channel's bit load.
func TestMultiChannelAccountingFlat(t *testing.T) {
	g := graph.Path(2)
	nw := New(Config{Graph: g, Seed: 1, CongestBits: 8}, func(node, degree int, r *rng.RNG) Machine {
		return &multiChan{node: node}
	})
	nw.Run(3)
	m := nw.Metrics()
	// Node 0 sends, each round: 8 bits on channel 0 (two 4-bit payloads,
	// coalesced -> 1 slot) and 9 bits on channel 1 (-> 2 slots): 3 slots.
	if m.MaxLinkSlots != 3 {
		t.Fatalf("MaxLinkSlots = %d, want 3", m.MaxLinkSlots)
	}
	if m.MaxChannels != 2 {
		t.Fatalf("MaxChannels = %d, want 2", m.MaxChannels)
	}
}

// multiChan exercises same-channel coalescing and cross-channel slot
// separation on a single link.
type multiChan struct{ node int }

func (m *multiChan) Init(ctx *Context) {}

func (m *multiChan) Step(ctx *Context, inbox []Packet) {
	if ctx.Round() >= 2 {
		ctx.Halt()
		return
	}
	if m.node != 0 {
		return
	}
	ctx.Send(0, 0, testMsg{v: 1, bits: 4})
	ctx.Send(0, 0, testMsg{v: 2, bits: 4})
	ctx.Send(0, 1, testMsg{v: 3, bits: 9})
}

// TestNewAllocationBound pins the struct-of-arrays setup: building a
// network is a constant number of allocations regardless of node count
// (plus whatever the factory allocates per machine — zero here, the
// machine is shared). The generous bound catches a regression back to
// per-node mailbox/rng/reverse-port allocations, which would scale with n
// and blow far past it.
func TestNewAllocationBound(t *testing.T) {
	g := graph.Cycle(4096)
	shared := &chatter{channels: 1, msg: &testMsg{v: 1, bits: 8}}
	factory := func(node, degree int, r *rng.RNG) Machine { return shared }
	allocs := testing.AllocsPerRun(5, func() {
		New(Config{Graph: g, Seed: 1}, factory)
	})
	if allocs > 64 {
		t.Fatalf("sim.New allocated %.0f times for n=4096; want O(1) per network (<= 64)", allocs)
	}
}
