package graph

import (
	"fmt"
	"math"

	"anonlead/internal/rng"
)

// Cycle returns the cycle C_n (n >= 3). The pumping-wheel impossibility
// experiment (paper Section 5.1, Figures 1-2) runs on this family.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n>=3, got %d", n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Graph()
}

// Path returns the path P_n (n >= 2).
func Path(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: path needs n>=2, got %d", n))
	}
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Graph()
}

// Complete returns the complete graph K_n (n >= 2).
func Complete(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: complete needs n>=2, got %d", n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Graph()
}

// Star returns the star K_{1,n-1}: node 0 is the hub.
func Star(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: star needs n>=2, got %d", n))
	}
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Graph()
}

// Grid returns the rows x cols 2D grid (no wraparound).
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic(fmt.Sprintf("graph: grid needs >=2 nodes, got %dx%d", rows, cols))
	}
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Graph()
}

// Torus returns the rows x cols 2D torus (grid with wraparound). Requires
// rows, cols >= 3 so the wrap edges do not collapse into multi-edges.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: torus needs rows,cols>=3, got %dx%d", rows, cols))
	}
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
			b.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.Graph()
}

// Hypercube returns the dim-dimensional hypercube Q_dim on 2^dim nodes.
func Hypercube(dim int) *Graph {
	if dim < 1 || dim > 30 {
		panic(fmt.Sprintf("graph: hypercube dim out of range: %d", dim))
	}
	n := 1 << dim
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for d := 0; d < dim; d++ {
			w := v ^ (1 << d)
			if v < w {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Graph()
}

// BinaryTree returns the complete rooted binary tree on n nodes (heap
// layout: children of i are 2i+1, 2i+2).
func BinaryTree(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: binary tree needs n>=2, got %d", n))
	}
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, (i-1)/2)
	}
	return b.Graph()
}

// Barbell returns two cliques of size k joined by a path of length
// pathLen (pathLen >= 1 intermediate edges; pathLen = 1 joins the cliques
// directly). Total nodes: 2k + max(0, pathLen-1). A classic low-conductance,
// high-mixing-time family.
func Barbell(k, pathLen int) *Graph {
	if k < 2 || pathLen < 1 {
		panic(fmt.Sprintf("graph: barbell needs k>=2, pathLen>=1, got k=%d pathLen=%d", k, pathLen))
	}
	inner := pathLen - 1
	n := 2*k + inner
	b := NewBuilder(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(i, j)
			b.AddEdge(k+inner+i, k+inner+j)
		}
	}
	prev := k - 1 // a clique-A node
	for i := 0; i < inner; i++ {
		b.AddEdge(prev, k+i)
		prev = k + i
	}
	b.AddEdge(prev, k+inner) // attach to clique B node
	return b.Graph()
}

// Lollipop returns a clique of size k with a pendant path of tail nodes
// attached (the lollipop graph, the classical worst case for hitting time).
func Lollipop(k, tail int) *Graph {
	if k < 2 || tail < 1 {
		panic(fmt.Sprintf("graph: lollipop needs k>=2, tail>=1, got k=%d tail=%d", k, tail))
	}
	n := k + tail
	b := NewBuilder(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(i, j)
		}
	}
	prev := k - 1
	for i := 0; i < tail; i++ {
		b.AddEdge(prev, k+i)
		prev = k + i
	}
	return b.Graph()
}

// CliqueOfCliques returns the diameter-2 "clique of cliques" on n nodes:
// node 0 is a hub adjacent to every other node, and nodes 1..n-1 are
// partitioned into k cliques of near-equal size. Any two non-adjacent nodes
// meet through the hub, so the diameter is exactly 2 (for n >= 4 with
// k >= 2), while conductance and mixing vary with k — the regime studied by
// the diameter-two leader election chasm (Chatterjee et al.). Requires
// n >= 4 and 2 <= k <= n-1.
func CliqueOfCliques(n, k int) *Graph {
	if n < 4 || k < 2 || k > n-1 {
		panic(fmt.Sprintf("graph: clique-of-cliques needs n>=4, 2<=k<=n-1, got n=%d k=%d", n, k))
	}
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	base, extra := (n-1)/k, (n-1)%k
	start := 1
	for c := 0; c < k; c++ {
		size := base
		if c < extra {
			size++
		}
		for i := start; i < start+size; i++ {
			for j := i + 1; j < start+size; j++ {
				b.AddEdge(i, j)
			}
		}
		start += size
	}
	return b.Graph()
}

// maxRegularAttempts bounds full restarts in RandomRegular.
const maxRegularAttempts = 50

// RandomRegular samples a simple connected d-regular graph on n nodes via
// the configuration model with double-edge-swap repair: a random perfect
// matching of stubs is drawn, then self-loops and duplicate edges are
// removed by degree-preserving swaps against random good pairs (full
// rejection of non-simple pairings would succeed with probability only
// ~e^{-(d²-1)/4}, which is hopeless already at d=6). Requires n*d even and
// 2 <= d < n. Returns ErrDisconnected if the restart budget is exhausted,
// which for d >= 3 is vanishingly unlikely.
func RandomRegular(n, d int, r *rng.RNG) (*Graph, error) {
	if d < 2 || d >= n || (n*d)%2 != 0 {
		return nil, fmt.Errorf("graph: invalid regular params n=%d d=%d", n, d)
	}
	stubs := make([]int, n*d)
	for attempt := 0; attempt < maxRegularAttempts; attempt++ {
		for i := range stubs {
			stubs[i] = i / d
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		pairs := make([][2]int, 0, len(stubs)/2)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u > v {
				u, v = v, u
			}
			pairs = append(pairs, [2]int{u, v})
		}
		if !repairPairs(pairs, r) {
			continue
		}
		b := NewBuilder(n)
		for _, e := range pairs {
			b.AddEdge(e[0], e[1])
		}
		g := b.Graph()
		if g.N() == n && g.M() == len(pairs) && g.IsConnected() {
			return g, nil
		}
	}
	return nil, ErrDisconnected
}

// repairPairs removes self-loops and duplicate pairs from a stub matching
// by double-edge swaps with uniformly random partners, preserving degrees.
// It returns false if the repair budget is exhausted.
func repairPairs(pairs [][2]int, r *rng.RNG) bool {
	count := make(map[[2]int]int, len(pairs))
	for _, e := range pairs {
		count[e]++
	}
	bad := func(e [2]int) bool { return e[0] == e[1] || count[e] > 1 }
	budget := 200 * len(pairs)
	for iter := 0; iter < budget; iter++ {
		// Find a bad pair (scan from a random offset for fairness).
		badIdx := -1
		off := r.Intn(len(pairs))
		for i := range pairs {
			j := (i + off) % len(pairs)
			if bad(pairs[j]) {
				badIdx = j
				break
			}
		}
		if badIdx < 0 {
			return true
		}
		j := r.Intn(len(pairs))
		if j == badIdx {
			continue
		}
		a, b := pairs[badIdx][0], pairs[badIdx][1]
		c, d := pairs[j][0], pairs[j][1]
		// Random swap orientation: (a,c)(b,d) or (a,d)(b,c).
		if r.Coin() {
			c, d = d, c
		}
		e1 := norm2(a, c)
		e2 := norm2(b, d)
		if e1[0] == e1[1] || e2[0] == e2[1] {
			continue
		}
		// Remove the two old pairs, then check the new ones are fresh.
		old1, old2 := pairs[badIdx], pairs[j]
		count[old1]--
		count[old2]--
		if count[e1] > 0 || count[e2] > 0 || e1 == e2 {
			count[old1]++
			count[old2]++
			continue
		}
		count[e1]++
		count[e2]++
		pairs[badIdx] = e1
		pairs[j] = e2
	}
	return false
}

// norm2 orders an edge's endpoints.
func norm2(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// maxGNPAttempts bounds connectivity retries in GNPConnected.
const maxGNPAttempts = 200

// GNP samples an Erdős–Rényi graph G(n, p). The result may be disconnected.
func GNP(n int, p float64, r *rng.RNG) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: gnp needs n>=2, got %d", n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bernoulli(p) {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Graph()
}

// GNPConnected samples G(n, p) conditioned on connectivity by rejection.
func GNPConnected(n int, p float64, r *rng.RNG) (*Graph, error) {
	for attempt := 0; attempt < maxGNPAttempts; attempt++ {
		g := GNP(n, p, r)
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, ErrDisconnected
}

// ByName constructs a family member by name for the CLI tools and the
// experiment harness. Supported names: cycle, path, complete, star, grid,
// torus, hypercube (n rounded down to a power of two), tree, barbell,
// lollipop, regular (degree 4), regular3, regular6, gnp (p = 2 ln n / n),
// expander (alias for regular6), diam2 (clique-of-cliques with a hub,
// k ≈ √(n-1) cliques; alias cliquehub).
func ByName(name string, n int, r *rng.RNG) (*Graph, error) {
	switch name {
	case "cycle":
		return Cycle(n), nil
	case "path":
		return Path(n), nil
	case "complete":
		return Complete(n), nil
	case "star":
		return Star(n), nil
	case "grid":
		rows, cols := squareDims(n)
		return Grid(rows, cols), nil
	case "torus":
		rows, cols := squareDims(n)
		if rows < 3 || cols < 3 {
			return nil, fmt.Errorf("graph: torus needs n>=9, got %d", n)
		}
		return Torus(rows, cols), nil
	case "hypercube":
		dim := 0
		for (1 << (dim + 1)) <= n {
			dim++
		}
		if dim < 1 {
			return nil, fmt.Errorf("graph: hypercube needs n>=2, got %d", n)
		}
		return Hypercube(dim), nil
	case "tree":
		return BinaryTree(n), nil
	case "barbell":
		k := n / 3
		if k < 2 {
			return nil, fmt.Errorf("graph: barbell needs n>=6, got %d", n)
		}
		return Barbell(k, n-2*k+1), nil
	case "lollipop":
		k := n / 2
		if k < 2 || n-k < 1 {
			return nil, fmt.Errorf("graph: lollipop needs n>=5, got %d", n)
		}
		return Lollipop(k, n-k), nil
	case "regular", "regular4":
		return RandomRegular(n, 4, r)
	case "regular3":
		d := 3
		if (n*d)%2 != 0 {
			d = 4
		}
		return RandomRegular(n, d, r)
	case "regular6", "expander":
		return RandomRegular(n, 6, r)
	case "diam2", "cliquehub":
		if n < 4 {
			return nil, fmt.Errorf("graph: diam2 needs n>=4, got %d", n)
		}
		k := int(math.Sqrt(float64(n - 1)))
		if k < 2 {
			k = 2
		}
		return CliqueOfCliques(n, k), nil
	case "gnp":
		p := 2.0 * math.Log(float64(n)) / float64(n)
		return GNPConnected(n, p, r)
	default:
		return nil, fmt.Errorf("graph: unknown family %q", name)
	}
}

// FamilyNames lists the names accepted by ByName, for CLI help text.
func FamilyNames() []string {
	return []string{
		"cycle", "path", "complete", "star", "grid", "torus", "hypercube",
		"tree", "barbell", "lollipop", "regular", "regular3", "regular6",
		"expander", "gnp", "diam2",
	}
}

// squareDims returns the most-square rows x cols factorization of n, i.e.
// the largest divisor r <= sqrt(n) paired with n/r, so Grid/Torus builders
// get exactly n nodes. Prime n degenerates to 1 x n (a path/cycle).
func squareDims(n int) (rows, cols int) {
	best := 1
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			best = r
		}
	}
	return best, n / best
}
