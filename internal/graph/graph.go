// Package graph provides the network-topology substrate for the leader
// election simulator: an undirected graph with per-node port labelings
// (the only structure anonymous nodes may rely on, per the paper's model),
// generators for the standard topology families used in the experiments,
// and basic traversal utilities.
//
// A node of degree d sees its incident links only as ports 0..d-1; the
// mapping from ports to neighbors is fixed at construction time and may be
// permuted adversarially (see PermutePorts) to exercise the protocols'
// independence from labelings.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"anonlead/internal/rng"
)

// Graph is a finite, simple, undirected graph with a port labeling: for each
// node v, the incident edges are arranged in a fixed order, and port p of v
// leads to the p-th entry of that order. Graph is immutable after
// construction and safe for concurrent readers.
type Graph struct {
	adj [][]int32 // adj[v][p] = neighbor of v behind port p
	m   int       // number of undirected edges
}

// Builder accumulates edges and produces an immutable Graph. The zero value
// is not usable; construct with NewBuilder.
type Builder struct {
	n     int
	adj   [][]int32
	seen  map[[2]int32]struct{}
	loops bool
}

// NewBuilder returns a Builder for a graph on n nodes (labeled 0..n-1).
func NewBuilder(n int) *Builder {
	if n <= 0 {
		panic(fmt.Sprintf("graph: builder with non-positive n=%d", n))
	}
	return &Builder{
		n:    n,
		adj:  make([][]int32, n),
		seen: make(map[[2]int32]struct{}, n),
	}
}

// AddEdge adds the undirected edge {u, v}. Duplicate edges are ignored
// (simple graph); self-loops are rejected. AddEdge panics on out-of-range
// endpoints, which always indicates a generator bug.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		b.loops = true
		return
	}
	a, c := int32(u), int32(v)
	if a > c {
		a, c = c, a
	}
	key := [2]int32{a, c}
	if _, dup := b.seen[key]; dup {
		return
	}
	b.seen[key] = struct{}{}
	b.adj[u] = append(b.adj[u], int32(v))
	b.adj[v] = append(b.adj[v], int32(u))
}

// HasEdge reports whether {u,v} has already been added.
func (b *Builder) HasEdge(u, v int) bool {
	a, c := int32(u), int32(v)
	if a > c {
		a, c = c, a
	}
	_, ok := b.seen[[2]int32{a, c}]
	return ok
}

// Graph finalizes the builder. The per-node port order is the insertion
// order of edges, which generators exploit to produce canonical labelings;
// call PermutePorts afterwards for adversarial labelings.
func (b *Builder) Graph() *Graph {
	return &Graph{adj: b.adj, m: len(b.seen)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbor returns the node behind port p of node v.
func (g *Graph) Neighbor(v, p int) int { return int(g.adj[v][p]) }

// Neighbors returns a copy of v's neighbor list in port order. The copy
// keeps callers from aliasing internal state (copy-at-boundary).
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, w := range g.adj[v] {
		out[i] = int(w)
	}
	return out
}

// PortTo returns the port of u that leads to v, or -1 if they are not
// adjacent.
func (g *Graph) PortTo(u, v int) int {
	for p, w := range g.adj[u] {
		if int(w) == v {
			return p
		}
	}
	return -1
}

// EdgeOffsets returns the prefix sums of node degrees: a slice of length
// n+1 with off[v+1]-off[v] = deg(v). It is the indexing scheme for flat
// per-port buffers (the simulator carves all per-edge state out of single
// backing arrays using these offsets).
func (g *Graph) EdgeOffsets() []int {
	off := make([]int, len(g.adj)+1)
	for v := range g.adj {
		off[v+1] = off[v] + len(g.adj[v])
	}
	return off
}

// ReversePorts returns the flat reverse-port table: for the edge behind
// port p of node v (at flat index EdgeOffsets()[v]+p, leading to w), the
// entry is the port of w that leads back to v. Built in O(m log n) via a
// sorted port index, so graph-sized setup never pays the O(deg) PortTo
// scan per edge (quadratic at hub nodes such as diam2 centers).
func (g *Graph) ReversePorts() []int32 {
	off := g.EdgeOffsets()
	idx := g.portsByNeighbor()
	rev := make([]int32, off[len(g.adj)])
	for v := range g.adj {
		base := off[v]
		for p, w := range g.adj[v] {
			rev[base+p] = portIn(g.adj[w], idx[w], int32(v))
		}
	}
	return rev
}

// portsByNeighbor returns, for every node, its ports ordered by the
// neighbor id behind them — a binary-searchable neighbor→port index.
// O(m log n) total; shared by ReversePorts and Validate. The per-node
// views are windows into one flat backing array and the sorter is reused,
// so the whole index costs a constant number of allocations.
func (g *Graph) portsByNeighbor() [][]int32 {
	off := g.EdgeOffsets()
	buf := make([]int32, off[len(g.adj)])
	idx := make([][]int32, len(g.adj))
	ps := &portSorter{}
	for v := range g.adj {
		ports := buf[off[v]:off[v+1]]
		for p := range ports {
			ports[p] = int32(p)
		}
		ps.nb, ps.ports = g.adj[v], ports
		sort.Sort(ps)
		idx[v] = ports
	}
	return idx
}

// portSorter sorts a node's port list by the neighbor id behind each port.
// It is reused across nodes to keep index construction allocation-free.
type portSorter struct{ nb, ports []int32 }

func (s *portSorter) Len() int           { return len(s.ports) }
func (s *portSorter) Less(i, j int) bool { return s.nb[s.ports[i]] < s.nb[s.ports[j]] }
func (s *portSorter) Swap(i, j int)      { s.ports[i], s.ports[j] = s.ports[j], s.ports[i] }

// portIn binary-searches idx (ports of a node sorted by neighbor id, over
// adjacency nb) for the port leading to v, returning -1 when absent.
func portIn(nb []int32, idx []int32, v int32) int32 {
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nb[idx[mid]] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(idx) && nb[idx[lo]] == v {
		return idx[lo]
	}
	return -1
}

// Edges returns all undirected edges as (u,v) pairs with u < v, sorted.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := range g.adj {
		for _, w := range g.adj[u] {
			if u < int(w) {
				out = append(out, [2]int{u, int(w)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// MaxDegree returns the maximum node degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nb := range g.adj {
		if len(nb) > max {
			max = len(nb)
		}
	}
	return max
}

// MinDegree returns the minimum node degree.
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, nb := range g.adj[1:] {
		if len(nb) < min {
			min = len(nb)
		}
	}
	return min
}

// Volume returns the sum of degrees of the given node set (2m for all nodes).
func (g *Graph) Volume(set []int) int {
	vol := 0
	for _, v := range set {
		vol += len(g.adj[v])
	}
	return vol
}

// PermutePorts returns a copy of g in which every node's port order has been
// independently shuffled using r. Protocol correctness must be invariant
// under this transformation (anonymous networks expose no canonical ports);
// tests use it as a labeling adversary.
func (g *Graph) PermutePorts(r *rng.RNG) *Graph {
	adj := make([][]int32, len(g.adj))
	for v := range g.adj {
		nb := make([]int32, len(g.adj[v]))
		copy(nb, g.adj[v])
		nodeRNG := r.Split(uint64(v))
		nodeRNG.Shuffle(len(nb), func(i, j int) { nb[i], nb[j] = nb[j], nb[i] })
		adj[v] = nb
	}
	return &Graph{adj: adj, m: g.m}
}

// Validate checks structural invariants: symmetry of the adjacency
// structure, no self-loops, no duplicate ports, and degree/edge-count
// consistency (handshake lemma). Generators are tested through this. Runs
// in O(m log n) via the sorted port index — no per-node maps, no linear
// PortTo scans — so validating a hub-heavy graph stays graph-sized.
func (g *Graph) Validate() error {
	degSum := 0
	for u := range g.adj {
		for _, w := range g.adj[u] {
			if int(w) == u {
				return fmt.Errorf("graph: self-loop at node %d", u)
			}
			if w < 0 || int(w) >= len(g.adj) {
				return fmt.Errorf("graph: node %d links out of range to %d", u, w)
			}
		}
		degSum += len(g.adj[u])
	}
	if degSum != 2*g.m {
		return fmt.Errorf("graph: handshake violation: degree sum %d != 2m %d", degSum, 2*g.m)
	}
	idx := g.portsByNeighbor()
	for u := range g.adj {
		nb, order := g.adj[u], idx[u]
		for i := 1; i < len(order); i++ {
			if nb[order[i]] == nb[order[i-1]] {
				return fmt.Errorf("graph: duplicate edge %d-%d", u, nb[order[i]])
			}
		}
		for _, w := range nb {
			if portIn(g.adj[w], idx[w], int32(u)) < 0 {
				return fmt.Errorf("graph: asymmetric edge %d->%d", u, w)
			}
		}
	}
	return nil
}

// ErrDisconnected is returned by generators that require connectivity when
// the sampled graph is not connected after the retry budget.
var ErrDisconnected = errors.New("graph: generated graph is not connected")
