package graph

// BFS runs a breadth-first search from src and returns the distance (in
// hops) from src to every node; unreachable nodes get -1.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.N())
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// IsConnected reports whether the graph is connected.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return false
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum BFS distance from src, or -1 if some
// node is unreachable.
func (g *Graph) Eccentricity(src int) int {
	ecc := 0
	for _, d := range g.BFS(src) {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter by running a BFS from every node.
// It returns -1 for disconnected graphs. Cost is O(n·m); the experiment
// harness only calls it at simulable sizes.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		ecc := g.Eccentricity(v)
		if ecc < 0 {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// DiameterLowerBound returns a cheap lower bound on the diameter via a
// double-sweep BFS (exact on trees, usually tight in practice). It returns
// -1 for disconnected graphs.
func (g *Graph) DiameterLowerBound() int {
	if g.N() == 0 {
		return -1
	}
	d0 := g.BFS(0)
	far, farD := 0, 0
	for v, d := range d0 {
		if d < 0 {
			return -1
		}
		if d > farD {
			far, farD = v, d
		}
	}
	best := 0
	for _, d := range g.BFS(far) {
		if d > best {
			best = d
		}
	}
	return best
}

// ComponentCount returns the number of connected components.
func (g *Graph) ComponentCount() int {
	visited := make([]bool, g.N())
	count := 0
	for s := 0; s < g.N(); s++ {
		if visited[s] {
			continue
		}
		count++
		stack := []int32{int32(s)}
		visited[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.adj[u] {
				if !visited[w] {
					visited[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return count
}
