package graph

import (
	"testing"
	"testing/quick"

	"anonlead/internal/rng"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 1) // duplicate ignored
	b.AddEdge(2, 2) // self-loop ignored
	g := b.Graph()
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderHasEdge(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 2)
	if !b.HasEdge(0, 2) || !b.HasEdge(2, 0) {
		t.Fatal("HasEdge should be symmetric")
	}
	if b.HasEdge(0, 1) {
		t.Fatal("HasEdge reported absent edge")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestPortSemantics(t *testing.T) {
	g := Cycle(5)
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("cycle degree at %d: %d", v, g.Degree(v))
		}
		for p := 0; p < g.Degree(v); p++ {
			w := g.Neighbor(v, p)
			back := g.PortTo(w, v)
			if back < 0 || g.Neighbor(w, back) != v {
				t.Fatalf("port round-trip failed at %d->%d", v, w)
			}
		}
	}
	if g.PortTo(0, 2) != -1 {
		t.Fatal("PortTo for non-adjacent nodes should be -1")
	}
}

func TestNeighborsIsCopy(t *testing.T) {
	g := Cycle(4)
	nb := g.Neighbors(0)
	nb[0] = 99
	if g.Neighbor(0, 0) == 99 {
		t.Fatal("Neighbors leaked internal state")
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := Complete(5)
	edges := g.Edges()
	if len(edges) != 10 {
		t.Fatalf("K5 edges: %d", len(edges))
	}
	for i, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not ordered", e)
		}
		if i > 0 {
			prev := edges[i-1]
			if prev[0] > e[0] || (prev[0] == e[0] && prev[1] >= e[1]) {
				t.Fatalf("edges not sorted at %d", i)
			}
		}
	}
}

func TestFamilySizes(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"cycle", Cycle(7), 7, 7},
		{"path", Path(7), 7, 6},
		{"complete", Complete(6), 6, 15},
		{"star", Star(9), 9, 8},
		{"grid", Grid(3, 4), 12, 17},
		{"torus", Torus(3, 4), 12, 24},
		{"hypercube", Hypercube(4), 16, 32},
		{"tree", BinaryTree(10), 10, 9},
		{"barbell", Barbell(4, 3), 10, 15},
		{"lollipop", Lollipop(4, 3), 7, 9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.g.N() != c.n || c.g.M() != c.m {
				t.Fatalf("got n=%d m=%d want n=%d m=%d", c.g.N(), c.g.M(), c.n, c.m)
			}
			if err := c.g.Validate(); err != nil {
				t.Fatal(err)
			}
			if !c.g.IsConnected() {
				t.Fatal("family instance disconnected")
			}
		})
	}
}

func TestFamilyDegrees(t *testing.T) {
	if g := Torus(4, 5); g.MinDegree() != 4 || g.MaxDegree() != 4 {
		t.Fatal("torus should be 4-regular")
	}
	if g := Hypercube(5); g.MinDegree() != 5 || g.MaxDegree() != 5 {
		t.Fatal("hypercube Q5 should be 5-regular")
	}
	if g := Cycle(9); g.MinDegree() != 2 || g.MaxDegree() != 2 {
		t.Fatal("cycle should be 2-regular")
	}
	if g := Star(6); g.MaxDegree() != 5 || g.MinDegree() != 1 {
		t.Fatal("star degrees wrong")
	}
}

func TestFamilyPanics(t *testing.T) {
	cases := []func(){
		func() { Cycle(2) },
		func() { Path(1) },
		func() { Complete(1) },
		func() { Star(1) },
		func() { Torus(2, 5) },
		func() { Hypercube(0) },
		func() { BinaryTree(1) },
		func() { Barbell(1, 1) },
		func() { Lollipop(1, 1) },
		func() { Grid(0, 5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(1)
	for _, d := range []int{2, 3, 4, 6, 8} {
		n := 50
		if (n*d)%2 != 0 {
			n++
		}
		g, err := RandomRegular(n, d, r)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if g.MinDegree() != d || g.MaxDegree() != d {
			t.Fatalf("d=%d: degrees [%d,%d]", d, g.MinDegree(), g.MaxDegree())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !g.IsConnected() {
			t.Fatalf("d=%d: disconnected", d)
		}
	}
}

func TestRandomRegularRejectsBadParams(t *testing.T) {
	r := rng.New(1)
	if _, err := RandomRegular(5, 3, r); err == nil {
		t.Fatal("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 1, r); err == nil {
		t.Fatal("d=1 accepted")
	}
	if _, err := RandomRegular(4, 4, r); err == nil {
		t.Fatal("d=n accepted")
	}
}

func TestGNPConnected(t *testing.T) {
	r := rng.New(2)
	g, err := GNPConnected(40, 0.2, r)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("GNPConnected returned disconnected graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestByNameAllFamilies(t *testing.T) {
	for _, name := range FamilyNames() {
		t.Run(name, func(t *testing.T) {
			r := rng.New(3)
			g, err := ByName(name, 16, r)
			if err != nil {
				t.Fatalf("ByName(%q, 16): %v", name, err)
			}
			if g.N() == 0 {
				t.Fatal("empty graph")
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if !g.IsConnected() {
				t.Fatal("disconnected")
			}
		})
	}
	if _, err := ByName("nosuch", 8, rng.New(1)); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestPermutePortsPreservesStructure(t *testing.T) {
	r := rng.New(4)
	g, err := RandomRegular(30, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	p := g.PermutePorts(r.Split(99))
	if p.N() != g.N() || p.M() != g.M() {
		t.Fatal("permutation changed size")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same edge sets.
	e1, e2 := g.Edges(), p.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge sets differ at %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestHandshakeProperty(t *testing.T) {
	r := rng.New(5)
	if err := quick.Check(func(seed uint64) bool {
		g := GNP(20, 0.3, r.Split(seed))
		degSum := 0
		for v := 0; v < g.N(); v++ {
			degSum += g.Degree(v)
		}
		return degSum == 2*g.M() && g.Validate() == nil
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVolume(t *testing.T) {
	g := Star(5)
	all := []int{0, 1, 2, 3, 4}
	if got := g.Volume(all); got != 2*g.M() {
		t.Fatalf("full volume %d != 2m %d", got, 2*g.M())
	}
	if got := g.Volume([]int{0}); got != 4 {
		t.Fatalf("hub volume %d != 4", got)
	}
}

func TestBFSAndDiameter(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		diam int
	}{
		{"path10", Path(10), 9},
		{"cycle10", Cycle(10), 5},
		{"cycle11", Cycle(11), 5},
		{"complete7", Complete(7), 1},
		{"star8", Star(8), 2},
		{"hypercube4", Hypercube(4), 4},
		{"grid3x4", Grid(3, 4), 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if d := c.g.Diameter(); d != c.diam {
				t.Fatalf("diameter %d want %d", d, c.diam)
			}
			lb := c.g.DiameterLowerBound()
			if lb > c.diam || lb < 1 {
				t.Fatalf("lower bound %d vs diameter %d", lb, c.diam)
			}
		})
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(6)
	d := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4, 5} {
		if d[i] != want {
			t.Fatalf("BFS dist[%d]=%d want %d", i, d[i], want)
		}
	}
}

func TestDisconnectedDetection(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Graph()
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if cc := g.ComponentCount(); cc != 2 {
		t.Fatalf("components: %d", cc)
	}
	if g.Diameter() != -1 || g.Eccentricity(0) != -1 || g.DiameterLowerBound() != -1 {
		t.Fatal("distance queries on disconnected graph should return -1")
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(5)
	if e := g.Eccentricity(2); e != 2 {
		t.Fatalf("center eccentricity %d want 2", e)
	}
	if e := g.Eccentricity(0); e != 4 {
		t.Fatalf("end eccentricity %d want 4", e)
	}
}

func TestSquareDims(t *testing.T) {
	cases := map[int][2]int{12: {3, 4}, 16: {4, 4}, 9: {3, 3}, 7: {1, 7}, 18: {3, 6}}
	for n, want := range cases {
		r, c := squareDims(n)
		if r != want[0] || c != want[1] {
			t.Fatalf("squareDims(%d) = %d,%d want %v", n, r, c, want)
		}
		if r*c != n {
			t.Fatalf("squareDims(%d) does not cover n", n)
		}
	}
}

func TestRepairPairsProperty(t *testing.T) {
	r := rng.New(6)
	if err := quick.Check(func(seed uint64) bool {
		rr := r.Split(seed)
		n, d := 24, 4
		stubs := make([]int, n*d)
		for i := range stubs {
			stubs[i] = i / d
		}
		rr.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		pairs := make([][2]int, 0, len(stubs)/2)
		for i := 0; i < len(stubs); i += 2 {
			pairs = append(pairs, norm2(stubs[i], stubs[i+1]))
		}
		if !repairPairs(pairs, rr) {
			return false
		}
		// After repair: simple and degree-preserving.
		deg := make([]int, n)
		seen := map[[2]int]bool{}
		for _, e := range pairs {
			if e[0] == e[1] || seen[e] {
				return false
			}
			seen[e] = true
			deg[e[0]]++
			deg[e[1]]++
		}
		for _, dv := range deg {
			if dv != d {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueOfCliques(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{4, 2}, {17, 4}, {33, 5}, {64, 7}, {100, 9},
	} {
		g := CliqueOfCliques(tc.n, tc.k)
		if g.N() != tc.n {
			t.Fatalf("n=%d k=%d: got %d nodes", tc.n, tc.k, g.N())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if d := g.Diameter(); d != 2 {
			t.Fatalf("n=%d k=%d: diameter %d, want 2", tc.n, tc.k, d)
		}
		// The hub reaches everyone directly.
		if g.Degree(0) != tc.n-1 {
			t.Fatalf("n=%d k=%d: hub degree %d", tc.n, tc.k, g.Degree(0))
		}
	}
	for _, bad := range []struct{ n, k int }{{3, 2}, {5, 1}, {5, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("CliqueOfCliques(%d,%d) did not panic", bad.n, bad.k)
				}
			}()
			CliqueOfCliques(bad.n, bad.k)
		}()
	}
}

func TestEdgeOffsetsAndReversePorts(t *testing.T) {
	g, err := ByName("diam2", 64, rng.New(3).SplitString("graph:diam2"))
	if err != nil {
		t.Fatal(err)
	}
	off := g.EdgeOffsets()
	if len(off) != g.N()+1 || off[g.N()] != 2*g.M() {
		t.Fatalf("offsets shape wrong: len=%d last=%d want %d/%d", len(off), off[g.N()], g.N()+1, 2*g.M())
	}
	rev := g.ReversePorts()
	for v := 0; v < g.N(); v++ {
		if off[v+1]-off[v] != g.Degree(v) {
			t.Fatalf("node %d: offset span %d != degree %d", v, off[v+1]-off[v], g.Degree(v))
		}
		for p := 0; p < g.Degree(v); p++ {
			w := g.Neighbor(v, p)
			q := rev[off[v]+p]
			if want := g.PortTo(w, v); int(q) != want {
				t.Fatalf("edge (%d,%d): reverse port %d != PortTo %d", v, p, q, want)
			}
			if g.Neighbor(w, int(q)) != v {
				t.Fatalf("edge (%d,%d): reverse port does not lead back", v, p)
			}
		}
	}
}
