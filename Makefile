# Shared entry points for humans and CI (.github/workflows/ci.yml calls
# exactly these targets, so a green `make ci` locally means a green pipeline).

GO ?= go

.PHONY: all build test race bench faults-smoke epochs-smoke scaling-smoke obs-smoke dist-demo bench-artifact benchdiff report baseline sweep-dist series-report lint fmt ci clean

all: build

# ./... covers the library, cmds and examples; CI's build job additionally
# runs `go build ./examples/...` as an explicit guard.
build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent subsystems (simulator schedulers
# — actors lifecycle and tracing included — the experiment orchestrator,
# the adversary layer they both drive, the trace recorders, the telemetry
# registry, the sweep coordinator, and the real-transport backend with its
# per-node driver goroutines).
race:
	$(GO) test -race ./internal/sim/... ./internal/harness/... ./internal/adversary/... \
		./internal/trace/... ./internal/obs/... ./internal/sweep/... \
		./internal/transport/... ./internal/epoch/...

# Bench smoke: every benchmark once. BenchmarkHarnessSweep writes
# BENCH_harness.json, which CI uploads for cross-PR perf tracking.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Fault-injection smoke: the quick resilience curves (message loss,
# crash-stop, churn, jitter degradation) end to end through the adversary
# subsystem. CI's bench-smoke job runs this next to the benchmarks.
faults-smoke:
	$(GO) run ./cmd/lebench -exp faults -quick -parallel

# Epoch smoke: the quick repeated-election scenarios (seed-chained crash-
# recover and revoke histories under the static and traffic-adaptive
# adversary rungs) end to end through anonlead.RunEpochs, archived as the
# separate BENCH_epochs.json artifact. CI's bench-smoke job runs this next
# to the fault curves.
epochs-smoke:
	$(GO) run ./cmd/lebench -exp epochs -quick -parallel -json BENCH_epochs.json

# Scaling smoke: one 100k-node expander cell under the streaming estimate
# regime, run twice so the second run demonstrates the profile-cache hit
# (cold cell budget: well under a minute; the repeat collapses to trial
# cost). CI's bench-smoke job runs this and archives BENCH_scaling.json
# next to BENCH_harness.json.
scaling-smoke:
	$(GO) run ./cmd/lebench -exp scaling -quick -json BENCH_scaling.json

# Observability smoke: the quick gate sweep with telemetry fully on —
# per-round histograms in the artifact, phase spans as a Chrome trace, a
# CPU profile, and the metrics snapshot rendered into the phase-breakdown
# table. CI's bench-smoke job runs this and archives the outputs; the
# files are also the easiest local entry into "where does a sweep spend
# its time" (open TRACE_lebench.json in Perfetto, `go tool pprof
# CPU_lebench.pprof`).
obs-smoke:
	$(GO) run ./cmd/lebench -exp sweeps -quick -parallel -round-profile \
		-trace-out TRACE_lebench.json -metrics-out OBS_metrics.json \
		-cpuprofile CPU_lebench.pprof -json BENCH_obs.json
	$(GO) run ./cmd/lereport -phases OBS_metrics.json -out REPORT_obs.md BENCH_obs.json

# Distributed-transport smoke: a 16-node election where every node is its
# own OS process over localhost TCP, plus the in-memory replay of the same
# seed. The run fails unless both elect the same leader in the same rounds
# with the same CONGEST charge; DIST_demo.json correlates wall-clock per
# distributed round with the simulated round count. CI's bench-smoke job
# runs this and archives the artifact.
dist-demo:
	$(GO) run ./cmd/ledist -proto floodmax -graph cycle -n 16 -seed 1 -out DIST_demo.json

# The regression-gate sweep: every artifact cell (Table 1 + the X4
# knowledge ablation + the fault-injection resilience curves) at the
# promoted -quick defaults, written as a schema-v3 artifact. Deterministic
# for a fixed -seed regardless of worker/shard count, so the same command
# regenerates the same cells on any machine.
bench-artifact:
	$(GO) run ./cmd/lebench -exp sweeps -quick -parallel -json BENCH_harness.json

# Diff the freshly-swept artifact against the committed baseline and fail
# on any variance-adjusted regression — or on baseline cells missing from
# the head sweep, so shrinking the sweep can't hide one (what CI's
# bench-gate job runs).
benchdiff: bench-artifact
	$(GO) run ./cmd/benchdiff -base testdata/BENCH_baseline.json -head BENCH_harness.json -fail-on regressed,removed

# Render the paper-style reproduction report from a fresh gate sweep
# (see README "Reading the results"). REPORT.md is a local artifact; the
# committed reference render lives at testdata/REPORT_baseline.md.
report: bench-artifact
	$(GO) run ./cmd/lereport -out REPORT.md BENCH_harness.json

# Refresh the committed baseline after an intentional perf/complexity
# change (see README "Refreshing the baseline"); commit both files. The
# report render is regenerated alongside so the golden tests stay in sync.
baseline:
	$(GO) run ./cmd/lebench -exp sweeps -quick -parallel -json testdata/BENCH_baseline.json
	$(GO) run ./cmd/lereport -title "anonlead reproduction report — baseline" \
		-out testdata/REPORT_baseline.md testdata/BENCH_baseline.json

# Distributed sweep + byte-identity proof: shard the gate matrix across
# two lesweep workers, rerun it single-process with timings stripped, and
# cmp the two files. Any byte of divergence — seed derivation leaking the
# worker topology, merge misplacing a cell — fails the target. CI's
# dist-sweep job runs exactly this.
sweep-dist:
	$(GO) run ./cmd/lesweep -workers 2 -quick -json BENCH_dist.json
	$(GO) run ./cmd/lebench -exp sweeps -quick -parallel -strip-timings -json BENCH_local.json
	cmp BENCH_dist.json BENCH_local.json
	@echo "distributed sweep is byte-identical to the local sweep"

# Cross-PR trend report: render the newest artifact plus the trajectory
# section over the archived series (oldest first — zero-padded run-id file
# names sort chronologically), failing on any net regressing trend. With
# fewer than two artifacts there is no trajectory and the gate no-ops.
# CI's series-gate job downloads prior bench-gate artifacts into
# $(SERIES_DIR) and runs this.
SERIES_DIR ?= series
series-report:
	$(GO) run ./cmd/lereport -title "Reproduction report (cross-PR series)" \
		-fail-on regressing \
		$(sort $(wildcard $(SERIES_DIR)/*.json)) BENCH_harness.json

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

ci: build lint test race bench

clean:
	rm -f BENCH_harness.json BENCH_scaling.json BENCH_dist.json BENCH_local.json REPORT.md
	rm -f BENCH_epochs.json
	rm -f BENCH_obs.json TRACE_lebench.json OBS_metrics.json CPU_lebench.pprof REPORT_obs.md
	rm -f DIST_demo.json
	$(GO) clean -testcache
