# Shared entry points for humans and CI (.github/workflows/ci.yml calls
# exactly these targets, so a green `make ci` locally means a green pipeline).

GO ?= go

.PHONY: all build test race bench lint fmt ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent subsystems (simulator schedulers
# and the experiment orchestrator).
race:
	$(GO) test -race ./internal/sim/... ./internal/harness/...

# Bench smoke: every benchmark once. BenchmarkHarnessSweep writes
# BENCH_harness.json, which CI uploads for cross-PR perf tracking.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

ci: build lint test race bench

clean:
	rm -f BENCH_harness.json
	$(GO) clean -testcache
