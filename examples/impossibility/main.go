// Impossibility: watch Theorem 2 break a terminating election.
//
// The paper proves that without knowing the network size, no algorithm can
// elect a single leader and stop. This example makes the proof's
// pumping-wheel construction concrete: the known-size protocol is told
// n=10 but actually runs on ever larger cycles assembled from "witnesses"
// (Figure 1); local executions cannot distinguish the small cycle from the
// wheel within their time bound, so multiple regions elect leaders —
// uniqueness collapses exactly as Theorem 2 predicts.
//
//	go run ./examples/impossibility
package main

import (
	"fmt"
	"log"

	"anonlead/internal/harness"
)

func main() {
	const presumedN = 10
	points, err := harness.SplitBrainExperiment(presumedN, []int{1, 2, 4}, 10, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(harness.RenderSplitBrain(presumedN, points))
	fmt.Println()
	fmt.Println("reading: every wheel elects many leaders; E[leaders] grows linearly in")
	fmt.Println("the number of planted witnesses because 2T(n)-separated regions run")
	fmt.Println("independent executions (the Figure 2 invariant). An irrevocable")
	fmt.Println("election that must stop by T(n) cannot ever be safe without knowing n.")
}
