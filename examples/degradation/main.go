// Degradation curves: leader election under deterministic fault injection,
// entirely through the public API.
//
// This charts the same resilience curves as `lebench -exp faults`: a
// protocol on a fixed topology, swept over adversary severities, each cell
// anchored at the fault-free point (a zero AdversarySpec is byte-identical
// to no adversary at all). Every fault decision is a pure function of the
// run seed, so the whole chart is reproducible to the byte — and the
// Dropped/Delayed/Crashed counters land directly on the public Result.
//
// Three ladders: message loss vs IRE, crash-stop vs FloodMax, delivery
// jitter vs walk-and-notify. The last run streams per-round metrics
// through WithObserver to show live progress plumbing.
//
//	go run ./examples/degradation
package main

import (
	"context"
	"fmt"
	"log"

	"anonlead"
)

const trials = 8

func main() {
	ctx := context.Background()
	nw, err := anonlead.NewNetwork("expander", 64, 21)
	if err != nil {
		log.Fatal(err)
	}
	stats := nw.Stats()
	fmt.Printf("expander: n=%d m=%d tmix=%d phi=%.3f\n\n", stats.N, stats.M, stats.MixingTime, stats.Conductance)

	fmt.Println("F1: message loss vs IRE")
	curve(ctx, nw, anonlead.ProtoIRE, []anonlead.AdversarySpec{
		{}, {Loss: 0.05}, {Loss: 0.1}, {Loss: 0.2},
	})

	fmt.Println("F2: crash-stop vs FloodMax")
	curve(ctx, nw, anonlead.ProtoFloodMax, []anonlead.AdversarySpec{
		{}, {CrashFraction: 0.1, CrashBy: 3}, {CrashFraction: 0.25, CrashBy: 3}, {CrashFraction: 0.5, CrashBy: 3},
	})

	fmt.Println("F3: delivery jitter vs walk-and-notify")
	curve(ctx, nw, anonlead.ProtoWalkNotify, []anonlead.AdversarySpec{
		{}, {DelayProb: 0.25, MaxDelay: 2}, {DelayProb: 0.5, MaxDelay: 4},
	})

	// Observer: stream the halting front of one faulted election.
	fmt.Println("observer: IRE under 10% loss, every 32 rounds")
	_, err = nw.Run(ctx, anonlead.ProtoIRE,
		anonlead.WithSeed(1),
		anonlead.WithAdversary(anonlead.AdversarySpec{Loss: 0.1}),
		anonlead.WithObserver(func(ri anonlead.RoundInfo) {
			if ri.Round%32 == 0 {
				fmt.Printf("  round %-4d halted=%-3d msgs=%-7d dropped=%d\n",
					ri.Round, ri.Halted, ri.Metrics.Messages, ri.Metrics.Dropped)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
}

// curve runs one severity ladder and prints the degradation relative to
// the fault-free anchor (the first, zero spec).
func curve(ctx context.Context, nw *anonlead.Network, proto string, ladder []anonlead.AdversarySpec) {
	fmt.Printf("  %-22s %9s %10s %9s %9s %9s\n", "adversary", "success", "msgs", "dropped", "delayed", "crashed")
	for _, spec := range ladder {
		var wins int
		var msgs, dropped, delayed, crashed float64
		for t := 0; t < trials; t++ {
			out, err := nw.Run(ctx, proto,
				anonlead.WithSeed(100+uint64(t)), anonlead.WithAdversary(spec))
			if err != nil {
				log.Fatal(err)
			}
			if out.Unique {
				wins++
			}
			msgs += float64(out.Messages)
			dropped += float64(out.Dropped)
			delayed += float64(out.Delayed)
			crashed += float64(out.Crashed)
		}
		name := spec.Descriptor()
		if name == "" {
			name = "(fault-free)"
		}
		fmt.Printf("  %-22s %6d/%d %10.0f %9.1f %9.1f %9.1f\n",
			name, wins, trials, msgs/trials, dropped/trials, delayed/trials, crashed/trials)
	}
	fmt.Println()
}
