// Spanning tree: explicit election with a leader-rooted BFS tree.
//
// The paper notes (Section 3) that once implicit leader election succeeds,
// explicit election, broadcast, and tree construction follow at an extra
// O(m) messages and O(D) time. This example runs ElectExplicit on a torus:
// the implicit Section 4 protocol elects, then the leader's announcement
// flood teaches every node the leader's ID and leaves each node with a
// parent pointer one hop closer to the leader — a BFS spanning tree ready
// for aggregation or scheduling duties. The tree arrives as the explicit
// protocol's per-protocol extras on the unified Run outcome.
//
//	go run ./examples/spanning-tree
package main

import (
	"context"
	"fmt"
	"log"

	"anonlead"
)

func main() {
	nw, err := anonlead.NewNetwork("torus", 36, 4)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nw.Run(context.Background(), anonlead.ProtoExplicit, anonlead.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	if !res.Unique {
		log.Fatalf("election failed uniqueness (leaders=%v): rerun with another seed", res.Leaders)
	}
	leader := res.Leaders[0]
	fmt.Printf("leader: node %d (id=%d), known to all nodes: %t\n", leader, res.LeaderID, res.AllKnow)
	fmt.Printf("cost: %d messages, %d rounds\n", res.Messages, res.Rounds)

	// Render the tree as depth histogram plus a few sample root paths.
	maxDepth := 0
	for _, d := range res.Depths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	hist := make([]int, maxDepth+1)
	for _, d := range res.Depths {
		hist[d]++
	}
	fmt.Println("tree depth histogram (depth: nodes):")
	for d, c := range hist {
		fmt.Printf("  %d: %d\n", d, c)
	}
	for _, v := range []int{0, nw.N() / 2, nw.N() - 1} {
		path := []int{v}
		for cur := v; cur != leader; {
			cur = res.Parents[cur]
			path = append(path, cur)
		}
		fmt.Printf("path %d -> leader: %v\n", v, path)
	}
}
