// Topology compare: where the paper's protocol wins and loses.
//
// Runs the paper's Irrevocable LE (Õ(√(n·tmix/Φ)) messages), the
// Gilbert-class walk baseline (Õ(tmix·√n)), and the Kutten-class FloodMax
// baseline (Θ(m) messages, Θ(D) rounds) on an expander, a cycle, and the
// diameter-2 clique-of-cliques, and prints the message/time comparison
// that Table 1 formalizes: flooding is cheap on time but pays m messages;
// the walk protocols win on messages on well-connected graphs; our
// protocol's √(tmix·Φ) advantage over the Gilbert class is largest on
// poorly conducting graphs like the cycle.
//
// The whole comparison matrix is expressed as one spec list and executed
// by the experiment orchestrator, which fans cells and trials out over all
// CPUs — with output bit-identical to a sequential loop.
//
//	go run ./examples/topology-compare
package main

import (
	"fmt"
	"log"

	"anonlead/internal/harness"
)

func main() {
	families := []struct {
		name  string
		sizes []int
	}{
		{"expander", []int{64, 128}},
		{"cycle", []int{32, 64}},
		{"diam2", []int{33, 65}},
	}
	protos := []harness.Protocol{
		harness.ProtoIRE, harness.ProtoWalkNotify, harness.ProtoFlood,
	}

	// One flat spec list over family × size × protocol.
	var specs []harness.CellSpec
	for _, fam := range families {
		for _, n := range fam.sizes {
			for _, proto := range protos {
				specs = append(specs, harness.CellSpec{
					Protocol: proto,
					Workload: harness.Workload{Family: fam.name, N: n},
					Opts:     harness.TrialOpts{Trials: 5, Seed: 11},
				})
			}
		}
	}
	cells, err := harness.Orchestrator{}.RunSweep(specs)
	if err != nil {
		log.Fatal(err)
	}

	i := 0
	for _, fam := range families {
		fmt.Printf("=== %s ===\n", fam.name)
		t := harness.Table{
			Header: []string{"protocol", "n", "msgs", "rounds", "charged", "success"},
		}
		for range fam.sizes {
			for range protos {
				cell := cells[i]
				i++
				t.AddRow(string(cell.Protocol), harness.I(cell.Workload.N),
					harness.F(cell.Messages), harness.F(cell.Rounds), harness.F(cell.Charged),
					fmt.Sprintf("%d/%d", cell.Successes, cell.Trials))
			}
		}
		fmt.Println(t.String())
	}
}
