// Topology compare: where the paper's protocol wins and loses.
//
// Runs the paper's Irrevocable LE (Õ(√(n·tmix/Φ)) messages), the
// Gilbert-class walk baseline (Õ(tmix·√n)), and the Kutten-class FloodMax
// baseline (Θ(m) messages, Θ(D) rounds) on an expander, a cycle, and the
// diameter-2 clique-of-cliques, and prints the message/time comparison
// that Table 1 formalizes: flooding is cheap on time but pays m messages;
// the walk protocols win on messages on well-connected graphs; our
// protocol's √(tmix·Φ) advantage over the Gilbert class is largest on
// poorly conducting graphs like the cycle.
//
// The comparison is written entirely against the public API: every
// protocol is a registry name handed to the same Network.Run call, so
// swapping protocols is a string, not a method — and each network's
// structural profile (diameter, mixing time, conductance) comes from
// Network.Profile, the same exact/estimate regime surface the protocols'
// defaults are filled from. (For large fanned-out sweeps with
// distribution artifacts, see cmd/lebench; for n beyond a few hundred,
// anonlead.ProfileEstimate keeps profiling cheap.)
//
//	go run ./examples/topology-compare
package main

import (
	"context"
	"fmt"
	"log"

	"anonlead"
)

func main() {
	families := []struct {
		name  string
		sizes []int
	}{
		{"expander", []int{64, 128}},
		{"cycle", []int{32, 64}},
		{"diam2", []int{33, 65}},
	}
	protos := []string{anonlead.ProtoIRE, anonlead.ProtoWalkNotify, anonlead.ProtoFloodMax}
	const trials = 5

	ctx := context.Background()
	for _, fam := range families {
		fmt.Printf("=== %s ===\n", fam.name)
		fmt.Printf("%-12s %6s %12s %8s %8s %8s\n",
			"protocol", "n", "msgs", "rounds", "charged", "success")
		for _, n := range fam.sizes {
			nw, err := anonlead.NewNetwork(fam.name, n, 11)
			if err != nil {
				log.Fatal(err)
			}
			// The structural quantities the protocols are parameterized
			// by, from the public profile surface (auto: exact here,
			// estimate past n=256).
			prof, err := nw.Profile(anonlead.ProfileAuto)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  n=%d: m=%d D=%d tmix=%d phi=%.3f\n",
				prof.N, prof.M, prof.Diameter, prof.MixingTime, prof.Conductance)
			for _, proto := range protos {
				var msgs, rounds, charged, wins float64
				for t := 0; t < trials; t++ {
					out, err := nw.Run(ctx, proto,
						anonlead.WithSeed(11+uint64(t)), anonlead.WithParallel(true))
					if err != nil {
						log.Fatal(err)
					}
					msgs += float64(out.Messages)
					rounds += float64(out.Rounds)
					charged += float64(out.ChargedRounds)
					if out.Unique {
						wins++
					}
				}
				fmt.Printf("%-12s %6d %12.1f %8.1f %8.1f %5.0f/%d\n",
					proto, n, msgs/trials, rounds/trials, charged/trials, wins, trials)
			}
		}
		fmt.Println()
	}
}
