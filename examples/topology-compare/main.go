// Topology compare: where the paper's protocol wins and loses.
//
// Runs the paper's Irrevocable LE (Õ(√(n·tmix/Φ)) messages), the
// Gilbert-class walk baseline (Õ(tmix·√n)), and the Kutten-class FloodMax
// baseline (Θ(m) messages, Θ(D) rounds) on an expander and a cycle, and
// prints the message/time comparison that Table 1 formalizes: flooding is
// cheap on time but pays m messages; the walk protocols win on messages
// on well-connected graphs; our protocol's √(tmix·Φ) advantage over the
// Gilbert class is largest on poorly conducting graphs like the cycle.
//
//	go run ./examples/topology-compare
package main

import (
	"fmt"
	"log"

	"anonlead/internal/harness"
)

func main() {
	for _, family := range []string{"expander", "cycle"} {
		sizes := []int{32, 64}
		if family == "expander" {
			sizes = []int{64, 128}
		}
		fmt.Printf("=== %s ===\n", family)
		t := harness.Table{
			Header: []string{"protocol", "n", "msgs", "rounds", "charged", "success"},
		}
		for _, n := range sizes {
			for _, proto := range []harness.Protocol{
				harness.ProtoIRE, harness.ProtoWalkNotify, harness.ProtoFlood,
			} {
				cell, err := harness.RunCell(proto, harness.Workload{Family: family, N: n},
					harness.TrialOpts{Trials: 5, Seed: 11})
				if err != nil {
					log.Fatal(err)
				}
				t.AddRow(string(proto), harness.I(n), harness.F(cell.Messages),
					harness.F(cell.Rounds), harness.F(cell.Charged),
					fmt.Sprintf("%d/%d", cell.Successes, cell.Trials))
			}
		}
		fmt.Println(t.String())
	}
}
