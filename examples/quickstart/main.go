// Quickstart: elect a leader in an anonymous network with known size.
//
// Builds a 256-node expander (6-regular random graph), runs the paper's
// Irrevocable Leader Election protocol (cautious broadcast + random-walk
// probes + convergecast) through the unified Run surface, and prints the
// winner with the exact CONGEST cost accounting.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"anonlead"
)

func main() {
	// Every election protocol is a named registry entry behind one API.
	fmt.Print("registered protocols:")
	for _, name := range anonlead.Protocols() {
		fmt.Printf(" %s", name)
	}
	fmt.Println()

	nw, err := anonlead.NewNetwork("expander", 256, 1)
	if err != nil {
		log.Fatal(err)
	}
	stats := nw.Stats()
	fmt.Printf("network: n=%d m=%d diameter=%d tmix=%d phi=%.3f\n",
		stats.N, stats.M, stats.Diameter, stats.MixingTime, stats.Conductance)

	out, err := nw.Run(context.Background(), anonlead.ProtoIRE, anonlead.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leaders elected: %v (unique=%t)\n", out.Leaders, out.Unique)
	fmt.Printf("cost: %d messages, %d bits, %d rounds (%d CONGEST-charged)\n",
		out.Messages, out.Bits, out.Rounds, out.ChargedRounds)

	// Elections are deterministic in the seed and independent across
	// seeds; rerun a few to see the high-probability guarantee at work.
	// WithParallel fans node steps over all CPUs with bit-identical output.
	unique := 0
	const trials = 10
	for seed := uint64(100); seed < 100+trials; seed++ {
		r, err := nw.Run(context.Background(), anonlead.ProtoIRE,
			anonlead.WithSeed(seed), anonlead.WithParallel(true))
		if err != nil {
			log.Fatal(err)
		}
		if r.Unique {
			unique++
		}
	}
	fmt.Printf("unique-leader rate over %d seeds: %d/%d\n", trials, unique, trials)
}
