// IoT swarm: leader election when nobody knows how many devices exist.
//
// The paper's motivating scenario: a batch of cheap sensors is deployed in
// an ad-hoc mesh; the deployment count is unknown and no device has an
// identifier. By the paper's Theorem 2 no algorithm can elect a leader and
// stop — so the swarm runs Revocable Leader Election (Blind LE with
// Certificates via Diffusion with Thresholds): devices probe doubling
// size estimates with a potential-diffusion detector, choose random IDs
// certified by the estimate in force, and converge on the smallest ID
// with the largest certificate. Leadership may transfer while estimates
// grow — the example prints the stabilized certificate.
//
//	go run ./examples/iot-swarm
package main

import (
	"context"
	"fmt"
	"log"

	"anonlead"
)

func main() {
	// A 3x3 sensor mesh (grid). The devices do NOT receive n=9; only the
	// simulator knows it.
	nw, err := anonlead.NewNetwork("grid", 9, 7)
	if err != nil {
		log.Fatal(err)
	}
	stats := nw.Stats()
	fmt.Printf("mesh: n=%d m=%d diameter=%d i(G)=%.3f\n",
		stats.N, stats.M, stats.Diameter, stats.Isoperimetric)

	// The site survey gives the installers the mesh's isoperimetric
	// bound, selecting the Theorem 3 diffusion schedule; the calibration
	// shortens the (polynomially huge) faithful schedule as recorded in
	// EXPERIMENTS.md while preserving the detector behaviour.
	res, err := nw.Run(context.Background(), anonlead.ProtoRevocable,
		anonlead.WithSeed(3),
		anonlead.WithIsoperimetric(stats.Isoperimetric),
		anonlead.WithEpsilon(0.5),
		anonlead.WithCalibration(0.5, 0.05),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stabilized leader: node %v (unique=%t)\n", res.Leaders, res.Unique)
	fmt.Printf("certificate: id=%d chosen at size estimate k=%d (final estimate %d, true n=%d)\n",
		res.Certificate.ID, res.Certificate.Estimate, res.FinalEstimate, stats.N)
	fmt.Printf("cost: %d messages, %d logical rounds, %d CONGEST-charged rounds\n",
		res.Messages, res.Rounds, res.ChargedRounds)
	fmt.Println("note: per Theorem 2 the devices can never halt — the harness observed")
	fmt.Println("stabilization externally once the estimate passed 4n (Theorem 3).")
}
