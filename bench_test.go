// Benchmarks regenerating every evaluation artifact of the paper
// (Table 1 cells, Figures 1-2, and the DESIGN.md ablations X1-X3).
// Each benchmark runs full protocol executions and reports, besides
// wall-clock, the protocol-level costs the paper bounds: messages, bits,
// logical rounds and CONGEST-charged rounds per election.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The mapping from benchmarks to paper artifacts is indexed in DESIGN.md
// §4 and the measured-vs-paper discussion lives in EXPERIMENTS.md.
//
// This is an external test package (anonlead_test): it drives the
// experiment harness, which itself runs on the public anonlead API, so an
// internal test package would be an import cycle.
package anonlead_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"anonlead/internal/adversary"
	"anonlead/internal/baseline"
	"anonlead/internal/core"
	"anonlead/internal/graph"
	"anonlead/internal/harness"
	"anonlead/internal/obs"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
	"anonlead/internal/spectral"
)

// benchCell prepares a profiled workload graph for benchmarks.
func benchCell(b *testing.B, family string, n int) (*graph.Graph, *spectral.Profile) {
	b.Helper()
	w := harness.Workload{Family: family, N: n}
	g, err := w.BuildGraph(1)
	if err != nil {
		b.Fatal(err)
	}
	prof, err := spectral.ProfileGraph(g)
	if err != nil {
		b.Fatal(err)
	}
	return g, prof
}

// reportTrial attaches protocol-cost metrics to the benchmark output.
func reportTrial(b *testing.B, sumMsgs, sumBits, sumRounds, sumCharged float64) {
	b.Helper()
	n := float64(b.N)
	b.ReportMetric(sumMsgs/n, "msgs/election")
	b.ReportMetric(sumBits/n, "bits/election")
	b.ReportMetric(sumRounds/n, "rounds/election")
	b.ReportMetric(sumCharged/n, "charged/election")
}

// BenchmarkTable1IRE measures the paper's Section 4 protocol (Table 1 row
// "n, Φ, tmix — this work": Õ(√(n·tmix/Φ)) msgs, O(tmix·log² n) time).
func BenchmarkTable1IRE(b *testing.B) {
	cells := []struct {
		family string
		n      int
	}{
		{"expander", 64}, {"expander", 128}, {"expander", 256},
		{"hypercube", 64}, {"hypercube", 256},
		{"cycle", 32}, {"cycle", 64},
		{"complete", 64}, {"complete", 128},
		{"torus", 64},
	}
	for _, c := range cells {
		b.Run(fmt.Sprintf("%s/n=%d", c.family, c.n), func(b *testing.B) {
			g, prof := benchCell(b, c.family, c.n)
			cfg := core.IREConfig{N: g.N(), TMix: prof.MixingTime, Phi: prof.Conductance}
			var msgs, bits, rounds, charged float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trial, err := harness.RunIRETrial(g, cfg, uint64(i)+1, harness.SimOpts{})
				if err != nil {
					b.Fatal(err)
				}
				msgs += float64(trial.Metrics.Messages)
				bits += float64(trial.Metrics.Bits)
				rounds += float64(trial.Rounds)
				charged += float64(trial.Metrics.ChargedRounds)
			}
			reportTrial(b, msgs, bits, rounds, charged)
		})
	}
}

// BenchmarkTable1Gilbert measures the Gilbert-class baseline (Table 1 row
// "n [10]": O(tmix·√n·log^{7/2} n) msgs).
func BenchmarkTable1Gilbert(b *testing.B) {
	cells := []struct {
		family string
		n      int
	}{
		{"expander", 64}, {"expander", 128}, {"expander", 256},
		{"cycle", 32}, {"cycle", 64},
		{"complete", 64}, {"complete", 128},
	}
	for _, c := range cells {
		b.Run(fmt.Sprintf("%s/n=%d", c.family, c.n), func(b *testing.B) {
			g, prof := benchCell(b, c.family, c.n)
			cfg := baseline.WalkNotifyConfig{N: g.N(), TMix: prof.MixingTime}
			var msgs, bits, rounds, charged float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trial, err := harness.RunWalkNotifyTrial(g, cfg, uint64(i)+1, harness.SimOpts{})
				if err != nil {
					b.Fatal(err)
				}
				msgs += float64(trial.Metrics.Messages)
				bits += float64(trial.Metrics.Bits)
				rounds += float64(trial.Rounds)
				charged += float64(trial.Metrics.ChargedRounds)
			}
			reportTrial(b, msgs, bits, rounds, charged)
		})
	}
}

// BenchmarkTable1Flood measures the Kutten-class flooding baseline
// (Table 1 rows "n, D [16]": O(m) msgs, O(D) time).
func BenchmarkTable1Flood(b *testing.B) {
	cells := []struct {
		family string
		n      int
	}{
		{"expander", 64}, {"expander", 256},
		{"cycle", 64}, {"complete", 64}, {"complete", 256},
	}
	for _, c := range cells {
		b.Run(fmt.Sprintf("%s/n=%d", c.family, c.n), func(b *testing.B) {
			g, prof := benchCell(b, c.family, c.n)
			cfg := baseline.FloodConfig{N: g.N(), Diam: prof.Diameter}
			var msgs, bits, rounds, charged float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trial, err := harness.RunFloodTrial(g, cfg, uint64(i)+1, harness.SimOpts{})
				if err != nil {
					b.Fatal(err)
				}
				msgs += float64(trial.Metrics.Messages)
				bits += float64(trial.Metrics.Bits)
				rounds += float64(trial.Rounds)
				charged += float64(trial.Metrics.ChargedRounds)
			}
			reportTrial(b, msgs, bits, rounds, charged)
		})
	}
}

// BenchmarkTable1Revocable measures the Section 5.2 protocol at the
// faithful Theorem 3 schedule on tiny complete graphs (Table 1 revocable
// rows (*)). The polynomial schedules bound what is simulable; see
// EXPERIMENTS.md.
func BenchmarkTable1Revocable(b *testing.B) {
	for _, n := range []int{3, 4, 6} {
		b.Run(fmt.Sprintf("complete/n=%d", n), func(b *testing.B) {
			g, prof := benchCell(b, "complete", n)
			cfg := core.RevocableConfig{Epsilon: 0.5, Isoperimetric: prof.Isoperim}
			var msgs, bits, rounds, charged float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trial, err := harness.RunRevocableTrial(g, cfg, uint64(i)+1, 0, harness.SimOpts{})
				if err != nil {
					b.Fatal(err)
				}
				msgs += float64(trial.Metrics.Messages)
				bits += float64(trial.Metrics.Bits)
				rounds += float64(trial.Rounds)
				charged += float64(trial.Metrics.ChargedRounds)
			}
			reportTrial(b, msgs, bits, rounds, charged)
		})
	}
}

// BenchmarkFigure1PumpingWheel measures one wheel execution of the
// impossibility experiment (Figure 1 witness construction): the known-n
// protocol told n=8 running on a wheel with the given witness count.
func BenchmarkFigure1PumpingWheel(b *testing.B) {
	for _, witnesses := range []int{1, 2} {
		b.Run(fmt.Sprintf("witnesses=%d", witnesses), func(b *testing.B) {
			leaders := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				points, err := harness.SplitBrainExperiment(8, []int{witnesses}, 1, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				leaders += int(points[0].MeanLeaders)
			}
			b.ReportMetric(float64(leaders)/float64(b.N), "leaders/wheel")
		})
	}
}

// BenchmarkFigure2SplitBrain measures the Figure 2 series point: the
// multi-leader probability estimate over a small trial batch.
func BenchmarkFigure2SplitBrain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := harness.SplitBrainExperiment(8, []int{2}, 3, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(points[0].MultiLeader)/float64(points[0].Trials), "P(multi)")
		b.ReportMetric(points[0].MeanLeaders, "E[leaders]")
	}
}

// BenchmarkAblationCautious measures cautious broadcast in isolation
// (DESIGN.md X1, paper Lemma 1).
func BenchmarkAblationCautious(b *testing.B) {
	for _, x := range []int{4, 16} {
		b.Run(fmt.Sprintf("x=%d", x), func(b *testing.B) {
			w := harness.Workload{Family: "expander", N: 128}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				points, _, err := harness.AblationCautious(w, []int{x}, 1, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(points[0].MeanTerritory, "territory")
				b.ReportMetric(points[0].Messages, "msgs")
			}
		})
	}
}

// BenchmarkAblationWalks measures the full protocol at sub- and
// super-critical walk counts (DESIGN.md X2, paper Lemma 2).
func BenchmarkAblationWalks(b *testing.B) {
	for _, factor := range []float64{0.5, 1, 2} {
		b.Run(fmt.Sprintf("factor=%g", factor), func(b *testing.B) {
			g, prof := benchCell(b, "expander", 128)
			cfg := core.IREConfig{
				N: g.N(), TMix: prof.MixingTime, Phi: prof.Conductance, XFactor: factor,
			}
			success := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trial, err := harness.RunIRETrial(g, cfg, uint64(i)+1, harness.SimOpts{})
				if err != nil {
					b.Fatal(err)
				}
				if trial.Success {
					success++
				}
			}
			b.ReportMetric(float64(success)/float64(b.N), "successRate")
		})
	}
}

// sweepSpecs is the orchestrator benchmark matrix: a cross-protocol,
// cross-family slice of the Table 1 workload, including a diameter-2
// clique-of-cliques cell and a knowledge-ablation cell.
func sweepSpecs() []harness.CellSpec {
	opts := harness.TrialOpts{Trials: 4, Seed: 1}
	return []harness.CellSpec{
		{Protocol: harness.ProtoIRE, Workload: harness.Workload{Family: "expander", N: 64}, Opts: opts},
		{Protocol: harness.ProtoIRE, Workload: harness.Workload{Family: "cycle", N: 32}, Opts: opts},
		{Protocol: harness.ProtoIRE, Workload: harness.Workload{Family: "diam2", N: 33}, Opts: opts},
		{Protocol: harness.ProtoFlood, Workload: harness.Workload{Family: "complete", N: 32}, Opts: opts},
		{Protocol: harness.ProtoWalkNotify, Workload: harness.Workload{Family: "expander", N: 64}, Opts: opts},
		{Protocol: harness.ProtoIRE, Workload: harness.Workload{Family: "expander", N: 64},
			Opts: harness.TrialOpts{Trials: 4, Seed: 1, PresumedN: 128}},
	}
}

// BenchmarkHarnessSweep measures the experiment orchestrator end to end:
// the same sweep matrix run sequentially and fanned out over the sharded
// worker pool (bit-identical results; the ratio is the orchestration
// speedup). The parallel variant emits BENCH_harness.json, which CI
// uploads for cross-PR perf trajectory tracking.
func BenchmarkHarnessSweep(b *testing.B) {
	specs := sweepSpecs()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := harness.RunSweepSequential(specs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("parallel/workers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		o := harness.Orchestrator{}
		var cells []harness.Cell
		start := time.Now()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if cells, err = o.RunSweep(specs); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		elapsed := time.Since(start) / time.Duration(b.N)
		artifact := harness.NewArtifact(o, specs, cells, elapsed)
		if err := artifact.WriteFile(harness.ArtifactName); err != nil {
			b.Fatal(err)
		}
	})
}

// obsPayload/obsChatter replicate the sim package's internal chatter
// benchmark machine from outside: every node broadcasts one shared fixed
// payload per round and never halts, so steady-state Step cost is pure
// simulator round loop with no protocol logic.
type obsPayload struct{ bits int }

func (p *obsPayload) Bits() int { return p.bits }

type obsChatter struct{ msg *obsPayload }

func (m *obsChatter) Init(ctx *sim.Context) {}

func (m *obsChatter) Step(ctx *sim.Context, inbox []sim.Packet) { ctx.Broadcast(m.msg) }

func obsChatterFactory() sim.Factory {
	msg := &obsPayload{bits: 16}
	return func(node, degree int, r *rng.RNG) sim.Machine { return &obsChatter{msg: msg} }
}

// roundProfileObserver is the harness's observer adapter shape: cumulative
// sim metrics in, per-round deltas into an obs.RoundProfile.
func roundProfileObserver(rp *obs.RoundProfile) func(sim.RoundInfo) {
	o := rp.RoundObserver()
	return func(ri sim.RoundInfo) { o(ri.Metrics.Messages, int64(ri.Halted)) }
}

// TestRoundLoopZeroAllocObservabilityDisabled is the PR-8 regression
// guard: adding the telemetry subsystem must not cost the round loop its
// steady-state zero-allocation property when observability is off (the
// default). It also pins the disabled obs entry points themselves —
// Span and the counters are what the harness calls around every cell.
func TestRoundLoopZeroAllocObservabilityDisabled(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("observability enabled at test start; guard must measure the default-off path")
	}
	nw := sim.New(sim.Config{Graph: graph.Torus(8, 8)}, obsChatterFactory())
	nw.Run(8) // warm mailboxes, send buffers, accounting chains
	if avg := testing.AllocsPerRun(50, func() { nw.Step() }); avg > 0.5 {
		t.Fatalf("steady-state round allocates %.1f objects with observability disabled, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() { obs.Span("trials")() }); avg > 0 {
		t.Fatalf("disabled obs.Span allocates %.1f objects, want 0", avg)
	}
}

// TestRoundLoopZeroAllocWithStaticAdversary extends the zero-allocation
// guard across the fault-injection path: a composed static (non-adaptive)
// adversary — per-packet loss decisions plus a crash schedule — must not
// cost the warmed round loop a single allocation. The adversaries' random
// decisions run on value-typed reseeded RNG chains precisely so this
// holds; only traffic-adaptive adversaries buy a per-round traffic
// buffer.
func TestRoundLoopZeroAllocWithStaticAdversary(t *testing.T) {
	g := graph.Torus(8, 8)
	adv := adversary.Compose(
		adversary.NewLoss(0.2, 7),
		adversary.NewCrashSchedule(g.N(), map[int]int{4: 3, 12: 9}),
	)
	nw := sim.New(sim.Config{Graph: g, Adversary: adv}, obsChatterFactory())
	nw.Run(16) // warm past both scheduled crashes
	if avg := testing.AllocsPerRun(50, func() { nw.Step() }); avg > 0.5 {
		t.Fatalf("steady-state round allocates %.1f objects with a static adversary, want 0", avg)
	}
	if nw.Metrics().Dropped == 0 {
		t.Fatal("loss adversary dropped nothing; the guard measured a dead fault path")
	}
}

// TestRoundLoopObservedAllocBound bounds the enabled-path overhead: with a
// round-profile observer attached (the heaviest per-round consumer the
// harness installs), a warmed round must still allocate nothing — the
// profile's buckets are fixed arrays and the observer adapter passes
// structs by value.
func TestRoundLoopObservedAllocBound(t *testing.T) {
	rp := &obs.RoundProfile{}
	nw := sim.New(sim.Config{
		Graph:    graph.Torus(8, 8),
		Observer: roundProfileObserver(rp),
	}, obsChatterFactory())
	nw.Run(8)
	if avg := testing.AllocsPerRun(50, func() { nw.Step() }); avg > 0.5 {
		t.Fatalf("observed round allocates %.1f objects/round, want 0", avg)
	}
	if rp.Rounds == 0 || rp.TotalMsgs == 0 {
		t.Fatalf("observer fed no data: %+v", rp)
	}
}

// BenchmarkNetworkRoundObserved measures the absolute round-loop overhead
// of the round-profile observer against the sim package's bare
// BenchmarkNetworkRound numbers.
func BenchmarkNetworkRoundObserved(b *testing.B) {
	rp := &obs.RoundProfile{}
	nw := sim.New(sim.Config{
		Graph:    graph.Torus(16, 16),
		Observer: roundProfileObserver(rp),
	}, obsChatterFactory())
	nw.Run(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Step()
	}
}

// BenchmarkAblationDiffusion measures the exact diffusion detector sweep
// (DESIGN.md X3, paper Lemmas 5-8).
func BenchmarkAblationDiffusion(b *testing.B) {
	w := harness.Workload{Family: "cycle", N: 12}
	for i := 0; i < b.N; i++ {
		points, err := harness.AblationDiffusion(w, 0.5, 32, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(last.MaxPot, "maxPotential")
	}
}
