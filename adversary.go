package anonlead

import (
	"anonlead/internal/adversary"
	"anonlead/internal/sim"
)

// Scheduler selects how node steps are executed each round. All schedulers
// produce bit-identical results: randomness is pre-split per node and
// routing is always performed in node order, so the choice is purely a
// throughput knob.
type Scheduler int

const (
	// Sequential runs node steps in index order on the calling goroutine.
	Sequential Scheduler = iota
	// WorkerPool fans node steps out over a bounded goroutine pool.
	WorkerPool
	// Actors runs every node as a persistent goroutine for the lifetime
	// of the run — message-passing all the way down.
	Actors
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case WorkerPool:
		return "workerpool"
	case Actors:
		return "actors"
	default:
		return "sequential"
	}
}

// toSim maps the public scheduler onto the simulator's.
func (s Scheduler) toSim() sim.Scheduler {
	switch s {
	case WorkerPool:
		return sim.WorkerPool
	case Actors:
		return sim.Actors
	default:
		return sim.Sequential
	}
}

// AdversarySpec declares a deterministic fault-injection adversary, the
// public mirror of the spec the fault-injection sweeps record in their
// bench artifacts. The zero value means "no adversary": a run with a zero
// spec is byte-identical to one without WithAdversary at all, so
// degradation curves can anchor at a genuinely unperturbed cell.
//
// Every fault decision is a pure function of (seed, round, edge/node) —
// never of call order — so fault-injected runs stay bit-identical across
// all schedulers. Dropped and delayed packets still count in Messages,
// Bits and link-slot charging: the sender transmitted them.
type AdversarySpec struct {
	// Loss is the per-packet Bernoulli drop probability.
	Loss float64

	// CrashFraction is the expected fraction of nodes that crash-stop;
	// each crashing node picks a uniform crash round in [0, CrashBy].
	CrashFraction float64
	// CrashBy is the last round at which a sampled crash may fire.
	CrashBy int
	// CrashSchedule fixes exact (node → round) crashes instead of
	// sampling them.
	CrashSchedule map[int]int

	// Churn is the per-edge per-round down probability.
	Churn float64
	// ChurnPreserve keeps a BFS spanning tree up so churn never
	// disconnects the live graph.
	ChurnPreserve bool

	// DelayProb is the probability a delivered packet is late.
	DelayProb float64
	// MaxDelay bounds the lateness (uniform 1..MaxDelay extra rounds).
	MaxDelay int

	// AdaptiveCrash enables the traffic-adaptive crash adversary: every
	// AdaptiveWindow rounds the AdaptiveCrash busiest nodes of that window
	// crash-stop — targeting the busiest node approximates targeting the
	// emerging leader. Victims are a pure function of the observed traffic
	// (no extra randomness), so adaptive runs stay deterministic per seed
	// and bit-identical across schedulers. 0 disables.
	AdaptiveCrash int
	// AdaptiveWindow is the traffic-observation window in rounds
	// (0 = default 8).
	AdaptiveWindow int
	// AdaptiveStrikes bounds how many windows claim victims before the
	// adaptive adversary goes dormant (0 = default 1).
	AdaptiveStrikes int
}

// internal maps the public spec onto the runtime one, field for field.
func (s AdversarySpec) internal() adversary.Spec {
	return adversary.Spec{
		Loss:            s.Loss,
		CrashFraction:   s.CrashFraction,
		CrashBy:         s.CrashBy,
		CrashSchedule:   s.CrashSchedule,
		Churn:           s.Churn,
		ChurnPreserve:   s.ChurnPreserve,
		DelayProb:       s.DelayProb,
		MaxDelay:        s.MaxDelay,
		AdaptiveCrash:   s.AdaptiveCrash,
		AdaptiveWindow:  s.AdaptiveWindow,
		AdaptiveStrikes: s.AdaptiveStrikes,
	}
}

// IsZero reports whether the spec configures no perturbation at all.
// Rates of exactly zero disable their primitive.
func (s AdversarySpec) IsZero() bool { return s.internal().IsZero() }

// Validate rejects out-of-range parameters (probabilities outside [0,1],
// negative rounds).
func (s AdversarySpec) Validate() error { return s.internal().Validate() }

// Descriptor canonically names the configuration, e.g.
// "loss=0.1,crash=0.25@16,churn=0.05+conn,delay=0.5x3". The grammar is a
// comma-joined list of the active primitives, each rendered with minimal
// decimal probabilities:
//
//	loss=<p>              Bernoulli packet loss at rate p
//	crash=<f>@<r>         fraction f of nodes crash by round r
//	crashsched=<k>        k explicitly scheduled crashes
//	churn=<p>[+conn]      per-edge downtime at rate p (+conn preserves
//	                      connectivity via a spanning tree)
//	delay=<p>x<d>         delivery jitter: probability p, 1..d rounds late
//	adaptive=<k>@<w>[x<s>] traffic-adaptive crashes: k busiest nodes per
//	                      w-round window, s strike windows (omitted at the
//	                      default s=1); defaults are rendered resolved
//
// A zero spec yields "". The descriptor is part of a sweep cell's
// identity in the bench artifacts, so it is stable across versions.
func (s AdversarySpec) Descriptor() string { return s.internal().Descriptor() }
