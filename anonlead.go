// Package anonlead is a library for randomized leader election in
// anonymous networks, reproducing Kowalski & Mosteiro, "Time and
// Communication Complexity of Leader Election in Anonymous Networks"
// (ICDCS 2021, arXiv:2101.04400).
//
// Elections run over a synchronous CONGEST simulation of an anonymous
// network (nodes have no identifiers, only ports). The protocols are
// named entries in a registry — Protocols() enumerates them — and every
// one executes through the same session surface:
//
//	out, err := nw.Run(ctx, anonlead.ProtoIRE, anonlead.WithSeed(42))
//
// Registered protocols:
//
//   - ire: Irrevocable Leader Election for known network size — the
//     paper's Section 4 protocol (cautious broadcast territories, random
//     walk probes, convergecast) using Õ(√(n·tmix/Φ)) messages and
//     O(tmix·log² n) rounds, with high probability.
//   - explicit: ire followed by a leader announcement flood that makes
//     every node learn the leader and builds a leader-rooted BFS spanning
//     tree (the paper's Section 3 extension).
//   - revocable: Revocable ("blind") Leader Election for unknown network
//     size — the paper's Section 5.2 protocol. By Theorem 2 no algorithm
//     can irrevocably elect without knowing the size, so the returned
//     leader is a stabilized revocable choice backed by a certificate.
//   - floodmax: the Kutten-class FloodMax baseline (known n and D).
//   - allflood: naive FloodMax with every node a candidate.
//   - walknotify: the Gilbert-class random-walk baseline (known n, tmix).
//
// Run composes with options: WithScheduler selects the execution engine
// (all engines are bit-identical), WithAdversary injects deterministic
// faults (message loss, crash-stop, churn, delivery jitter) described by
// an AdversarySpec, WithObserver streams per-round cost metrics, and
// WithPresumedN misreports the network size for knowledge ablations
// (after Dieudonné & Pelc). The context cancels long runs cooperatively.
//
// Topologies come from NewNetwork (named families) or NewNetworkFromEdges
// (custom edge lists). Every election is deterministic in the provided
// seed: same network, protocol, seed and options — byte-identical outcome,
// regardless of scheduler.
//
// Elect, ElectExplicit and ElectRevocable are thin wrappers over Run kept
// for compatibility with the original three-method API.
package anonlead

import (
	"sync"

	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/spectral"
)

// Network is an anonymous network instance: a connected topology plus its
// structural profile (diameter, mixing time, conductance, isoperimetric
// number), computed lazily when a protocol, Stats or Profile needs it and
// cached per regime. Construct with NewNetwork or NewNetworkFromEdges. A
// Network is immutable and safe for concurrent elections.
type Network struct {
	g    *graph.Graph
	seed uint64 // construction seed; feeds the estimate regime's sampling

	mu    sync.Mutex
	profs map[spectral.Mode]*spectral.Profile // keyed by resolved mode
}

// Families returns the topology family names accepted by NewNetwork:
// cycle, path, complete, star, grid, torus, hypercube, tree, barbell,
// lollipop, regular, regular3, regular6, expander, gnp.
func Families() []string { return graph.FamilyNames() }

// NewNetwork builds a named topology family instance on n nodes. Random
// families (regular, gnp, expander) are drawn deterministically from seed
// with the same derivation the experiment harness uses, so
// NewNetwork(family, n, seed) is exactly the workload graph behind the
// corresponding sweep cell in the benchmark artifacts. Construction is
// graph-sized work: the structural profile is computed lazily when a
// protocol, Stats or Profile first needs it.
func NewNetwork(family string, n int, seed uint64) (*Network, error) {
	g, err := graph.ByName(family, n, rng.New(seed).SplitString("graph:"+family))
	if err != nil {
		return nil, err
	}
	return newNetwork(g, seed)
}

// NewNetworkFromEdges builds a network from an explicit undirected edge
// list over nodes 0..n-1. The graph must be connected and simple.
func NewNetworkFromEdges(n int, edges [][2]int) (*Network, error) {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return newNetwork(b.Graph(), 0)
}

// NewNetworkFromGraph wraps an already-built internal topology without
// re-deriving it from a family name. The parameter type lives in an
// internal package, so only this module's own packages (the experiment
// harness, the CLIs) can call it; external users construct networks with
// NewNetwork or NewNetworkFromEdges. The spectral profile is computed
// lazily, so wrapping is cheap when every protocol input is supplied
// explicitly.
func NewNetworkFromGraph(g *graph.Graph) (*Network, error) {
	return newNetwork(g, 0)
}

func newNetwork(g *graph.Graph, seed uint64) (*Network, error) {
	if g == nil || g.N() == 0 {
		return nil, errEmptyGraph
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		// Rejected on every construction path (even though profiling is
		// lazy) so Stats and the profiled defaults can never observe a
		// disconnected graph.
		return nil, graph.ErrDisconnected
	}
	return &Network{g: g, seed: seed}, nil
}

// profileMode returns the network's structural profile under the given
// regime, computing it on first use and caching per resolved mode (the
// graph is connected by construction, so profiling cannot fail on the
// topology).
func (nw *Network) profileMode(mode spectral.Mode) (*spectral.Profile, error) {
	resolved := mode.Resolve(nw.g.N())
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if p, ok := nw.profs[resolved]; ok {
		return p, nil
	}
	p, err := spectral.ProfileGraphMode(nw.g, resolved, nw.seed)
	if err != nil {
		return nil, err
	}
	if nw.profs == nil {
		nw.profs = make(map[spectral.Mode]*spectral.Profile, 2)
	}
	nw.profs[resolved] = p
	return p, nil
}

// cachedProfile returns the already-computed profile for the resolved
// mode, or nil — it never forces a computation. Run uses it to attach a
// profile to the Outcome exactly when one was needed.
func (nw *Network) cachedProfile(mode spectral.Mode) *spectral.Profile {
	resolved := mode.Resolve(nw.g.N())
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.profs[resolved]
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.g.N() }

// M returns the number of links.
func (nw *Network) M() int { return nw.g.M() }

// Stats returns the network's structural profile under the auto regime
// (exact on small networks, streaming estimate on large ones; zero value
// only on internal profiling failure — constructors reject disconnected
// graphs up front). Profile exposes the full profile with regime flags.
func (nw *Network) Stats() NetworkStats {
	prof, err := nw.profileMode(spectral.ModeAuto)
	if err != nil {
		return NetworkStats{}
	}
	return NetworkStats{
		N:             prof.N,
		M:             prof.M,
		Diameter:      prof.Diameter,
		MixingTime:    prof.MixingTime,
		Conductance:   prof.Conductance,
		Isoperimetric: prof.Isoperim,
		SpectralGap:   prof.SpectralGap,
	}
}

// NetworkStats summarizes the structural quantities the protocols are
// parameterized by.
type NetworkStats struct {
	N             int
	M             int
	Diameter      int
	MixingTime    int
	Conductance   float64
	Isoperimetric float64
	SpectralGap   float64
}

// Elect runs Irrevocable Leader Election (known network size) and returns
// the outcome. With default options the protocol parameters follow the
// paper with the calibration constants recorded in EXPERIMENTS.md; the
// election succeeds (exactly one leader) with high probability.
//
// Elect is a thin wrapper over Run(ctx, ProtoIRE, ...); new code should
// prefer Run, which also exposes the scheduler, adversary and observer
// options and per-protocol extras.
func (nw *Network) Elect(opts ...Option) (Result, error) {
	out, err := nw.Run(nil, ProtoIRE, opts...)
	if err != nil {
		return Result{}, err
	}
	return out.Result, nil
}

// ElectExplicit runs explicit Irrevocable Leader Election: the implicit
// Section 4 protocol followed by a leader announcement flood that makes
// every node learn the leader and simultaneously builds a leader-rooted
// BFS spanning tree (the paper's Section 3 extension). The extra cost over
// Elect is at most 2m messages and n rounds.
//
// ElectExplicit is a thin wrapper over Run(ctx, ProtoExplicit, ...).
func (nw *Network) ElectExplicit(opts ...Option) (ExplicitResult, error) {
	out, err := nw.Run(nil, ProtoExplicit, opts...)
	if err != nil {
		return ExplicitResult{}, err
	}
	return ExplicitResult{
		Result:   out.Result,
		LeaderID: out.LeaderID,
		AllKnow:  out.AllKnow,
		Parents:  out.Parents,
		Depths:   out.Depths,
	}, nil
}

// ElectRevocable runs Revocable Leader Election (unknown network size)
// until the stabilization point guaranteed by the paper's Theorem 3 (all
// nodes chose certified IDs, all agree on the leader certificate, and the
// size estimate passed 4n) and returns the stabilized outcome.
//
// ElectRevocable is a thin wrapper over Run(ctx, ProtoRevocable, ...).
func (nw *Network) ElectRevocable(opts ...Option) (RevocableResult, error) {
	out, err := nw.Run(nil, ProtoRevocable, opts...)
	if err != nil {
		return RevocableResult{}, err
	}
	res := RevocableResult{Result: out.Result, FinalEstimate: out.FinalEstimate}
	if out.Certificate != nil {
		res.Certificate = *out.Certificate
	}
	return res, nil
}
