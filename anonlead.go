// Package anonlead is a library for randomized leader election in
// anonymous networks, reproducing Kowalski & Mosteiro, "Time and
// Communication Complexity of Leader Election in Anonymous Networks"
// (ICDCS 2021, arXiv:2101.04400).
//
// The package offers two elections over a synchronous CONGEST simulation
// of an anonymous network (nodes have no identifiers, only ports):
//
//   - Elect: Irrevocable Leader Election for known network size — the
//     paper's Section 4 protocol (cautious broadcast territories, random
//     walk probes, convergecast) using Õ(√(n·tmix/Φ)) messages and
//     O(tmix·log² n) rounds, with high probability.
//
//   - ElectRevocable: Revocable ("blind") Leader Election for unknown
//     network size — the paper's Section 5.2 protocol (Blind Leader
//     Election with Certificates via Diffusion with Thresholds). By the
//     paper's Theorem 2 no algorithm can irrevocably elect without knowing
//     the size, so the returned leader is a stabilized revocable choice.
//
// Topologies come from NewNetwork (named families) or NewNetworkFromEdges
// (custom edge lists). Every election is deterministic in the provided
// seed.
//
// Quick start:
//
//	nw, err := anonlead.NewNetwork("expander", 256, 1)
//	if err != nil { ... }
//	res, err := nw.Elect(anonlead.WithSeed(42))
//	if err != nil { ... }
//	fmt.Println(res.Unique, res.Leaders, res.Messages)
package anonlead

import (
	"fmt"

	"anonlead/internal/core"
	"anonlead/internal/graph"
	"anonlead/internal/rng"
	"anonlead/internal/sim"
	"anonlead/internal/spectral"
)

// Network is an anonymous network instance: a connected topology plus its
// structural profile (diameter, mixing time, conductance, isoperimetric
// number). Construct with NewNetwork or NewNetworkFromEdges. A Network is
// immutable and safe for concurrent elections.
type Network struct {
	g    *graph.Graph
	prof *spectral.Profile
}

// Families returns the topology family names accepted by NewNetwork:
// cycle, path, complete, star, grid, torus, hypercube, tree, barbell,
// lollipop, regular, regular3, regular6, expander, gnp.
func Families() []string { return graph.FamilyNames() }

// NewNetwork builds a named topology family instance on n nodes. Random
// families (regular, gnp, expander) are drawn deterministically from seed.
func NewNetwork(family string, n int, seed uint64) (*Network, error) {
	g, err := graph.ByName(family, n, rng.New(seed).SplitString("family:"+family))
	if err != nil {
		return nil, err
	}
	return newNetwork(g)
}

// NewNetworkFromEdges builds a network from an explicit undirected edge
// list over nodes 0..n-1. The graph must be connected and simple.
func NewNetworkFromEdges(n int, edges [][2]int) (*Network, error) {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return newNetwork(b.Graph())
}

func newNetwork(g *graph.Graph) (*Network, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	prof, err := spectral.ProfileGraph(g)
	if err != nil {
		return nil, err
	}
	return &Network{g: g, prof: prof}, nil
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.g.N() }

// M returns the number of links.
func (nw *Network) M() int { return nw.g.M() }

// Stats returns the network's structural profile.
func (nw *Network) Stats() NetworkStats {
	return NetworkStats{
		N:             nw.prof.N,
		M:             nw.prof.M,
		Diameter:      nw.prof.Diameter,
		MixingTime:    nw.prof.MixingTime,
		Conductance:   nw.prof.Conductance,
		Isoperimetric: nw.prof.Isoperim,
		SpectralGap:   nw.prof.SpectralGap,
	}
}

// NetworkStats summarizes the structural quantities the protocols are
// parameterized by.
type NetworkStats struct {
	N             int
	M             int
	Diameter      int
	MixingTime    int
	Conductance   float64
	Isoperimetric float64
	SpectralGap   float64
}

// Elect runs Irrevocable Leader Election (known network size) and returns
// the outcome. With default options the protocol parameters follow the
// paper with the calibration constants recorded in EXPERIMENTS.md; the
// election succeeds (exactly one leader) with high probability.
func (nw *Network) Elect(opts ...Option) (Result, error) {
	o := buildOptions(opts)
	cfg := core.IREConfig{
		N:       nw.g.N(),
		TMix:    o.mixingTime,
		Phi:     o.conductance,
		C:       o.constant,
		X:       o.walks,
		XFactor: o.walkFactor,
	}
	if cfg.TMix == 0 {
		cfg.TMix = nw.prof.MixingTime
	}
	if cfg.Phi == 0 {
		cfg.Phi = nw.prof.Conductance
	}
	factory, err := core.NewIREFactory(cfg)
	if err != nil {
		return Result{}, err
	}
	net := sim.New(sim.Config{Graph: nw.g, Seed: o.seed, Parallel: o.parallel}, factory)
	_, _, _, _, total := net.Machine(0).(*core.IREMachine).Params()
	rounds := net.Run(total + 4)
	if !net.AllHalted() {
		return Result{}, fmt.Errorf("anonlead: protocol did not halt within %d rounds", total+4)
	}
	res := Result{Rounds: rounds}
	fillMetrics(&res, net.Metrics())
	for v := 0; v < nw.g.N(); v++ {
		if net.Machine(v).(*core.IREMachine).Output().Leader {
			res.Leaders = append(res.Leaders, v)
		}
	}
	res.Unique = len(res.Leaders) == 1
	return res, nil
}

// ElectExplicit runs explicit Irrevocable Leader Election: the implicit
// Section 4 protocol followed by a leader announcement flood that makes
// every node learn the leader and simultaneously builds a leader-rooted
// BFS spanning tree (the paper's Section 3 extension). The extra cost over
// Elect is at most 2m messages and n rounds.
func (nw *Network) ElectExplicit(opts ...Option) (ExplicitResult, error) {
	o := buildOptions(opts)
	cfg := core.ExplicitConfig{IRE: core.IREConfig{
		N:       nw.g.N(),
		TMix:    o.mixingTime,
		Phi:     o.conductance,
		C:       o.constant,
		X:       o.walks,
		XFactor: o.walkFactor,
	}}
	if cfg.IRE.TMix == 0 {
		cfg.IRE.TMix = nw.prof.MixingTime
	}
	if cfg.IRE.Phi == 0 {
		cfg.IRE.Phi = nw.prof.Conductance
	}
	factory, err := core.NewExplicitFactory(cfg)
	if err != nil {
		return ExplicitResult{}, err
	}
	net := sim.New(sim.Config{Graph: nw.g, Seed: o.seed, Parallel: o.parallel}, factory)
	total := net.Machine(0).(*core.ExplicitMachine).TotalRounds()
	rounds := net.Run(total + 4)
	if !net.AllHalted() {
		return ExplicitResult{}, fmt.Errorf("anonlead: explicit protocol did not halt within %d rounds", total+4)
	}
	res := ExplicitResult{
		Result:  Result{Rounds: rounds},
		Parents: make([]int, nw.g.N()),
		Depths:  make([]int, nw.g.N()),
	}
	fillMetrics(&res.Result, net.Metrics())
	res.AllKnow = true
	for v := 0; v < nw.g.N(); v++ {
		out := net.Machine(v).(*core.ExplicitMachine).Output()
		if out.IRE.Leader {
			res.Leaders = append(res.Leaders, v)
			res.LeaderID = out.IRE.ID
		}
		if !out.KnowsLeader {
			res.AllKnow = false
		}
		res.Depths[v] = out.Depth
		if out.ParentPort >= 0 {
			res.Parents[v] = nw.g.Neighbor(v, out.ParentPort)
		} else {
			res.Parents[v] = -1
		}
	}
	res.Unique = len(res.Leaders) == 1
	return res, nil
}

// ElectRevocable runs Revocable Leader Election (unknown network size)
// until the stabilization point guaranteed by the paper's Theorem 3 (all
// nodes chose certified IDs, all agree on the leader certificate, and the
// size estimate passed 4n) and returns the stabilized outcome.
func (nw *Network) ElectRevocable(opts ...Option) (RevocableResult, error) {
	o := buildOptions(opts)
	cfg := core.RevocableConfig{
		Epsilon:       o.epsilon,
		Xi:            o.xi,
		Isoperimetric: o.isoperimetric,
		FMult:         o.fMult,
		RMult:         o.rMult,
	}
	factory, err := core.NewRevocableFactory(cfg)
	if err != nil {
		return RevocableResult{}, err
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.5
	}
	maxRounds := o.maxRounds
	if maxRounds <= 0 {
		maxRounds = 200_000_000
	}
	net := sim.New(sim.Config{Graph: nw.g, Seed: o.seed, Parallel: o.parallel}, factory)
	stable := func() bool { return revocableStable(net, eps) }
	rounds := net.RunUntil(maxRounds, func(completed int) bool {
		return completed%64 == 0 && stable()
	})
	if !stable() {
		return RevocableResult{}, fmt.Errorf("anonlead: revocable election did not stabilize within %d rounds", rounds)
	}
	res := RevocableResult{Result: Result{Rounds: rounds}}
	fillMetrics(&res.Result, net.Metrics())
	for v := 0; v < nw.g.N(); v++ {
		out := net.Machine(v).(*core.RevocableMachine).Output()
		if out.Leader {
			res.Leaders = append(res.Leaders, v)
		}
		if v == 0 {
			res.Certificate = Certificate{ID: out.LeaderID, Estimate: out.LeaderK}
			res.FinalEstimate = out.EstimateK
		}
	}
	res.Unique = len(res.Leaders) == 1
	res.Result.Rounds = rounds
	return res, nil
}

// revocableStable is the Theorem 3 stabilization predicate.
func revocableStable(net *sim.Network, eps float64) bool {
	n := net.N()
	first := net.Machine(0).(*core.RevocableMachine).Output()
	if !first.Chosen || first.LeaderK == 0 {
		return false
	}
	if pow1e(float64(first.EstimateK), eps) <= 4*float64(n) {
		return false
	}
	for v := 1; v < n; v++ {
		o := net.Machine(v).(*core.RevocableMachine).Output()
		if !o.Chosen || o.LeaderK != first.LeaderK || o.LeaderID != first.LeaderID {
			return false
		}
	}
	return true
}
