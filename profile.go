package anonlead

import (
	"fmt"

	"anonlead/internal/spectral"
)

// ProfileMode selects how a network's structural profile (diameter, λ₂,
// mixing time, conductance) is computed. The zero value is ProfileAuto.
type ProfileMode int

const (
	// ProfileAuto picks the exact regime for small networks (n ≤ 256) and
	// the streaming estimate regime above, where the exact algorithms'
	// dense matrices and all-pairs traversals stop being tractable. This
	// is the default for Run and Stats.
	ProfileAuto ProfileMode = iota
	// ProfileExact forces the legacy exact regime: exact diameter, dense
	// matrix-powered mixing time (up to n = 256, spectral bound above),
	// enumerated cuts at tiny n. Byte-identical to every profile computed
	// before modes existed.
	ProfileExact
	// ProfileEstimate forces the streaming regime: double-sweep diameter
	// lower bound, budgeted power iteration, sampled-walk mixing time and
	// sweep cuts. Never materializes an n×n matrix — every pass is O(m) —
	// so it scales to millions of nodes.
	ProfileEstimate
)

// String returns the canonical mode name: "auto", "exact" or "estimate".
// The same strings appear in CLI flags and bench artifact descriptors.
func (m ProfileMode) String() string { return m.internal().String() }

// ParseProfileMode parses a canonical mode name ("" parses as auto, the
// convention bench artifacts use for the default regime).
func ParseProfileMode(s string) (ProfileMode, error) {
	im, err := spectral.ParseMode(s)
	if err != nil {
		return ProfileAuto, fmt.Errorf("anonlead: %w", err)
	}
	return fromInternalMode(im), nil
}

// internal maps the public mode onto the spectral package's, value for
// value.
func (m ProfileMode) internal() spectral.Mode {
	switch m {
	case ProfileExact:
		return spectral.ModeExact
	case ProfileEstimate:
		return spectral.ModeEstimate
	default:
		return spectral.ModeAuto
	}
}

func fromInternalMode(im spectral.Mode) ProfileMode {
	switch im {
	case spectral.ModeExact:
		return ProfileExact
	case spectral.ModeEstimate:
		return ProfileEstimate
	default:
		return ProfileAuto
	}
}

// Profile is the structural profile of a network: the quantities the
// paper's protocols are parameterized by, plus the regime flags saying how
// each one was obtained. It mirrors the internal spectral profile field
// for field; Outcome.Profile and Network.Profile expose it.
type Profile struct {
	N         int // nodes
	M         int // edges
	Diameter  int // exact diameter; a double-sweep lower bound when Estimated
	MinDegree int // minimum degree
	MaxDegree int // maximum degree

	Lambda2     float64 // second eigenvalue of the lazy walk
	SpectralGap float64 // 1 − Lambda2

	MixingTime  int  // paper tmix(G): exact at small n, estimated otherwise
	ExactMixing bool // whether MixingTime is exact
	// MixingCapped reports that the mixing-time search hit its step budget
	// and the value is a lower bound / extrapolation, not a measured
	// crossing.
	MixingCapped bool

	Conductance   float64 // Φ(G): exact at tiny n, sweep-cut bound otherwise
	Isoperimetric float64 // i(G): same regime split as Conductance
	ExactCuts     bool    // whether Conductance/Isoperimetric are exact

	// Estimated reports that the streaming estimate regime produced this
	// profile (ProfileEstimate, or ProfileAuto on a large network).
	Estimated bool
}

// Mode returns the resolved regime that produced the profile:
// ProfileEstimate when Estimated, ProfileExact otherwise.
func (p Profile) Mode() ProfileMode {
	if p.Estimated {
		return ProfileEstimate
	}
	return ProfileExact
}

// String renders the profile as the same aligned block the CLIs print.
func (p Profile) String() string { return p.internal().String() }

// publicProfile maps the internal profile onto the public mirror, field
// for field (guarded by a reflection parity test).
func publicProfile(sp *spectral.Profile) Profile {
	return Profile{
		N:             sp.N,
		M:             sp.M,
		Diameter:      sp.Diameter,
		MinDegree:     sp.MinDegree,
		MaxDegree:     sp.MaxDegree,
		Lambda2:       sp.Lambda2,
		SpectralGap:   sp.SpectralGap,
		MixingTime:    sp.MixingTime,
		ExactMixing:   sp.ExactMixing,
		MixingCapped:  sp.MixingCapped,
		Conductance:   sp.Conductance,
		Isoperimetric: sp.Isoperim,
		ExactCuts:     sp.ExactCuts,
		Estimated:     sp.Estimated,
	}
}

// internal maps the public profile back onto the spectral type (the
// inverse of publicProfile; used by String and the parity test).
func (p Profile) internal() *spectral.Profile {
	return &spectral.Profile{
		N:            p.N,
		M:            p.M,
		Diameter:     p.Diameter,
		MinDegree:    p.MinDegree,
		MaxDegree:    p.MaxDegree,
		Lambda2:      p.Lambda2,
		SpectralGap:  p.SpectralGap,
		MixingTime:   p.MixingTime,
		ExactMixing:  p.ExactMixing,
		MixingCapped: p.MixingCapped,
		Conductance:  p.Conductance,
		Isoperim:     p.Isoperimetric,
		ExactCuts:    p.ExactCuts,
		Estimated:    p.Estimated,
	}
}

// Profile returns the network's structural profile under the given mode,
// computing it on first use and caching per resolved regime (auto shares
// the cache entry of whatever regime it resolves to). Concurrent callers
// are safe; repeated calls are free.
func (nw *Network) Profile(mode ProfileMode) (Profile, error) {
	sp, err := nw.profileMode(mode.internal())
	if err != nil {
		return Profile{}, err
	}
	return publicProfile(sp), nil
}
