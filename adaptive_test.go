package anonlead

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// adaptiveSpec is the canonical adaptive configuration the public tests
// pin: one victim, a short observation window.
var adaptiveSpec = AdversarySpec{AdaptiveCrash: 1, AdaptiveWindow: 4}

func runAdaptive(t *testing.T, spec AdversarySpec, opts ...Option) Outcome {
	t.Helper()
	nw := mustNetwork(t, "complete", 8, 3)
	all := append([]Option{WithSeed(11)}, opts...)
	if !spec.IsZero() {
		all = append(all, WithAdversary(spec))
	}
	out, err := nw.Run(context.Background(), ProtoIRE, all...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

// TestAdaptiveAdversaryDeterministicPerSeed: adaptive fates are a pure
// function of the observed traffic, so the same seed reproduces the same
// outcome byte for byte, under every scheduler.
func TestAdaptiveAdversaryDeterministicPerSeed(t *testing.T) {
	base := runAdaptive(t, adaptiveSpec)
	if base.Metrics.Crashed != 1 {
		t.Fatalf("adaptive adversary crashed %d nodes, want 1", base.Metrics.Crashed)
	}
	baseRaw, _ := json.Marshal(base)
	if again := runAdaptive(t, adaptiveSpec); !reflect.DeepEqual(again, base) {
		t.Fatal("adaptive run is not reproducible for a fixed seed")
	}
	for _, s := range []Scheduler{WorkerPool, Actors} {
		got := runAdaptive(t, adaptiveSpec, WithScheduler(s))
		raw, _ := json.Marshal(got)
		if string(raw) != string(baseRaw) {
			t.Errorf("scheduler %v adaptive run diverges:\n%s\nvs\n%s", s, raw, baseRaw)
		}
	}
}

// TestAdaptiveAdversaryDivergesFromStaticFates: the adaptive run must be
// genuinely adaptive — different from the unperturbed baseline, and
// different from a static-fate adversary that kills a fixed node on the
// same timeline (node 0 at the window boundary). If the adaptive run ever
// collapsed into either, the traffic feed would be dead code.
func TestAdaptiveAdversaryDivergesFromStaticFates(t *testing.T) {
	adaptive := runAdaptive(t, adaptiveSpec)
	clean := runAdaptive(t, AdversarySpec{})
	if reflect.DeepEqual(adaptive.Metrics, clean.Metrics) {
		t.Fatal("adaptive run identical to the fault-free baseline")
	}
	static := runAdaptive(t, AdversarySpec{CrashSchedule: map[int]int{0: 5}})
	if static.Metrics.Crashed != 1 {
		t.Fatalf("static baseline crashed %d nodes, want 1", static.Metrics.Crashed)
	}
	if reflect.DeepEqual(adaptive.Metrics, static.Metrics) &&
		reflect.DeepEqual(adaptive.Leaders, static.Leaders) {
		t.Fatal("adaptive run identical to the static-schedule baseline; the traffic condition is dead")
	}
}

// TestAdaptiveDescriptorPublicMirror: the new fields round-trip through
// the public mirror's Descriptor/Validate like every other primitive.
func TestAdaptiveDescriptorPublicMirror(t *testing.T) {
	spec := AdversarySpec{AdaptiveCrash: 2, AdaptiveWindow: 4, AdaptiveStrikes: 2}
	if got, want := spec.Descriptor(), "adaptive=2@4x2"; got != want {
		t.Fatalf("descriptor %q, want %q", got, want)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (AdversarySpec{AdaptiveStrikes: 1}).Validate(); err == nil {
		t.Fatal("strikes without adaptive_crash accepted")
	}
	if (AdversarySpec{AdaptiveCrash: 1}).IsZero() {
		t.Fatal("adaptive spec reported zero")
	}
}
