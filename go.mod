module anonlead

go 1.21
